"""Vectorized float64 kernel backend (NumPy).

Evaluates the Eq. 2-3 whole-histogram track kernel and the Eq. 8-10
feed-through mean as array operations instead of per-net scalar loops:

* **Log-space tables.**  A cumulative log-factorial array gives
  ``log C(n, i)`` directly, and the surjection triangle is kept as
  float64 *logarithms* grown by the all-positive recurrence::

      log b(d, i) = log i + logaddexp(log b(d-1, i), log b(d-1, i-1))

  which never overflows and never cancels — the alternating
  inclusion-exclusion sum for b(d, i) loses ~e^(-i) relative accuracy
  when d approaches i, so it is deliberately not used.
* **One masked-tensor pass per estimate.**  For row counts ``n`` (a
  vector — the 2-D batched row-sweep kernel) and net sizes ``D``, the
  Eq. 2 log-weights ``log C(n, i) + log b(D, i)`` form a
  (rows x sizes x spread) tensor; the mode's denominator cancels under
  the estimator's renormalization, so a softmax over the spread axis
  yields every E(i) at once, for all candidate row counts, in one
  call.
* **Discontinuity guard with per-net exact fallback.**  The
  estimator's integer outputs pass E(i) through ``round_up``, whose
  *only* discontinuity sits at ``m + ROUND_EPSILON`` above each
  integer ``m`` (values at or below an integer round and ceil to the
  same result, so approaching an integer from below — the common
  large-D asymptote E -> rows — is perfectly safe in float).  Only
  expectations inside the :data:`NEAR_INTEGER_GUARD` window around
  that cut, or non-finite ones, are recomputed by the exact backend.
  As long as the true float error stays below the window margin
  (empirically ~1e-14, gated by ``mae verify --check
  backend_equivalence`` against the committed envelope), the integer
  outputs are *identical* to the exact backend's, and therefore so is
  every derived estimate field.

The module imports cleanly without NumPy; the backend then reports
``available = False`` and the registry's ``auto`` resolution falls back
to ``exact``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.errors import EstimationError
from repro.perf import kernels

try:  # pragma: no cover - exercised via the no-NumPy CI leg
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: ``repro.units.round_up``'s epsilon, mirrored here: a value within
#: this of an integer rounds to it, anything further above is ceiled.
ROUND_EPSILON = 1e-9

#: Half-width of the fallback window around round_up's one
#: discontinuity at ``m + ROUND_EPSILON``.  A float64 value v with
#: ``|(v - rint(v)) - ROUND_EPSILON| > NEAR_INTEGER_GUARD`` and float
#: error below the window margin (measured ~1e-14, see
#: VERIFY_backend_envelope.json; 100x headroom) provably lands on the
#: same side of the cut as the true value, so the vectorized round_up
#: agrees with the exact backend bit-for-bit.  Everything below an
#: integer — including exact integers (rows = 1 gives E = 1, empty
#: central straddle gives mean = 0) and the large-D asymptote E ->
#: rows — is outside the window and stays on the vectorized path.
NEAR_INTEGER_GUARD = 1e-10


def _vector_power(base, exponent: int):
    """:func:`repro.perf.kernels.binary_float_power` on a float64 array.

    The same right-to-left square-and-multiply ladder, elementwise:
    every element undergoes the identical sequence of IEEE-754
    multiplies as the scalar kernel, so the resulting array is
    bit-identical to the scalar values — no libm ``pow`` involved.
    """
    result = _np.ones_like(base)
    square = base
    remaining = exponent
    while remaining:
        if remaining & 1:
            result = result * square
        remaining >>= 1
        if remaining:
            square = square * square
    return result


class _LogTables:
    """Grown-on-demand log-factorial array and log-surjection triangle."""

    __slots__ = ("log_factorial", "log_b", "growths")

    def __init__(self) -> None:
        self.clear()

    def clear(self) -> None:
        self.log_factorial = None  # lf[k] = log(k!), k = 0..N
        self.log_b = None          # log_b[d-1, i-1] = log b(d, i)
        self.growths = 0

    def ensure(self, max_n: int, max_d: int) -> None:
        """Grow the tables to cover C(n <= max_n, *) and b(d <= max_d,
        i <= min(max_n, max_d)).

        The triangle is only as wide as the spreads ever consulted
        (i <= min(rows, D), so row counts bound it far below the depth),
        and each recurrence step runs in place on the preallocated
        table — the rebuild after a reset costs one short vector op per
        net size, not a square table.
        """
        if self.log_factorial is None or len(self.log_factorial) <= max_n:
            target = max(max_n + 1, 64)
            if self.log_factorial is not None:
                target = max(target, 2 * len(self.log_factorial))
            values = _np.zeros(target)
            values[1:] = _np.cumsum(_np.log(_np.arange(1, target)))
            self.log_factorial = values
            self.growths += 1
        width_needed = min(max_n, max_d)
        if (
            self.log_b is None
            or self.log_b.shape[0] < max_d
            or self.log_b.shape[1] < width_needed
        ):
            depth = max(max_d, 16)
            width = max(width_needed, 16)
            if self.log_b is not None:
                depth = max(depth, 2 * self.log_b.shape[0])
                width = max(width, 2 * self.log_b.shape[1])
            width = min(width, depth)
            log_i = _np.log(_np.arange(1, width + 1))
            table = _np.full((depth, width), -_np.inf)
            table[0, 0] = 0.0
            shifted = _np.empty(width)
            for d in range(1, depth):
                prev = table[d - 1]
                shifted[0] = -_np.inf
                shifted[1:] = prev[:-1]
                row = table[d]
                _np.logaddexp(prev, shifted, out=row)
                row += log_i
            self.log_b = table
            self.growths += 1


class NumpyBackend:
    """Float64 whole-histogram / batched-row-sweep kernel backend."""

    name = "numpy"

    def __init__(self) -> None:
        self._tables = _LogTables() if _np is not None else None
        self._counters = {
            "evaluations": 0,
            "batched_evaluations": 0,
            "spread_fallbacks": 0,
            "feedthrough_fallbacks": 0,
            "congestion_fallbacks": 0,
        }

    @property
    def available(self) -> bool:
        return _np is not None

    # ------------------------------------------------------------------
    # Eq. 2-3: expected row spread and track demand
    # ------------------------------------------------------------------
    def _spread_grid(self, sizes, row_counts):
        """E(i) for every (row count, net size) pair: shape (k, s).

        Entries with D <= 1 carry 0.0 (their track demand is defined as
        zero before E is ever consulted).  The Eq. 2 denominator — the
        only place the paper/exact modes differ — cancels under
        renormalization, so the grid serves both modes.
        """
        rows_arr = _np.asarray(row_counts, dtype=_np.int64)
        size_arr = _np.asarray(sizes, dtype=_np.int64)
        max_n = int(rows_arr.max())
        max_d = int(size_arr.max())
        self._tables.ensure(max_n, max_d)
        lf = self._tables.log_factorial
        spread = min(max_n, max_d)
        i_idx = _np.arange(1, spread + 1)
        n_col = rows_arr[:, None]
        # log C(n, i), -inf where i > n.
        log_c = _np.where(
            i_idx <= n_col,
            lf[n_col] - lf[i_idx] - lf[_np.clip(n_col - i_idx, 0, None)],
            -_np.inf,
        )
        # log b(D, i) rows of the triangle (-inf beyond i = D).
        log_b = self._tables.log_b[size_arr - 1][:, :spread]
        weights = log_c[:, None, :] + log_b[None, :, :]
        peak = weights.max(axis=2, keepdims=True)
        mass = _np.exp(weights - peak)
        total = mass.sum(axis=2)
        moment = (mass * i_idx).sum(axis=2)
        with _np.errstate(invalid="ignore", divide="ignore"):
            grid = moment / total
        return _np.where(size_arr[None, :] <= 1, 0.0, grid)

    def _tracks_grid(self, histogram, row_counts, mode):
        """Integer track demands for every (row count, histogram entry),
        guard-banded onto the exact backend's values."""
        sizes = [components for components, _ in histogram]
        grid = self._spread_grid(sizes, row_counts)
        with _np.errstate(invalid="ignore"):
            nearest = _np.rint(grid)
            delta = grid - nearest
            risky = ~_np.isfinite(grid) | (
                _np.abs(delta - ROUND_EPSILON) <= NEAR_INTEGER_GUARD
            )
        # Vectorized round_up, trusted everywhere outside the window.
        safe = _np.where(risky, 0.0, grid)
        rounded = _np.where(
            _np.abs(delta) <= ROUND_EPSILON, nearest, _np.ceil(safe)
        )
        tracks = _np.maximum(1, rounded).astype(_np.int64)
        tracks[:, _np.asarray(sizes) <= 1] = 0
        result: List[Tuple[int, ...]] = []
        for k, rows in enumerate(row_counts):
            row_tracks = tracks[k]
            if risky[k].any():
                row_tracks = row_tracks.copy()
                for s in _np.nonzero(risky[k])[0]:
                    if sizes[s] > 1:
                        self._counters["spread_fallbacks"] += 1
                        row_tracks[s] = kernels.tracks_for_net(
                            sizes[s], rows, mode
                        )
            result.append(tuple(row_tracks.tolist()))
        return tuple(result)

    def tracks_for_histogram(
        self,
        histogram: Sequence[Tuple[int, int]],
        rows: int,
        mode: str,
    ) -> Tuple[int, ...]:
        histogram = tuple(histogram)
        self._validate(rows, mode=mode)
        self._counters["evaluations"] += 1
        if not histogram:
            return ()
        return self._tracks_grid(histogram, (rows,), mode)[0]

    def tracks_for_histogram_rows(
        self,
        histogram: Sequence[Tuple[int, int]],
        row_counts: Sequence[int],
        mode: str,
    ) -> Tuple[Tuple[int, ...], ...]:
        histogram = tuple(histogram)
        row_counts = tuple(row_counts)
        for rows in row_counts:
            self._validate(rows, mode=mode)
        self._counters["batched_evaluations"] += 1
        if not histogram:
            return tuple(() for _ in row_counts)
        if not row_counts:
            return ()
        return self._tracks_grid(histogram, row_counts, mode)

    def spread_expectations(
        self,
        histogram: Sequence[Tuple[int, int]],
        rows: int,
        mode: str,
    ) -> Tuple[float, ...]:
        """Raw float64 E(i) per histogram entry, *before* the guard band
        — the probe the backend-equivalence envelope measures."""
        histogram = tuple(histogram)
        self._validate(rows, mode=mode)
        if not histogram:
            return ()
        sizes = [components for components, _ in histogram]
        return tuple(float(e) for e in self._spread_grid(sizes, (rows,))[0])

    # ------------------------------------------------------------------
    # Eq. 8-10: central-row feed-through mean
    # ------------------------------------------------------------------
    def _feedthrough_matrix(self, size_arr, row_counts):
        """Eq. 8 central-row straddle probability, shape (k, s).

        Both central rows of an even row count are evaluated at once
        (for odd counts the two coincide, and their IEEE average is the
        value itself), so a whole row sweep is one broadcasted pass.
        """
        rows_i = _np.asarray(row_counts, dtype=_np.int64)[:, None]
        rows_f = rows_i.astype(_np.float64)

        def at_row(row):
            above = (row - 1) / rows_f
            below = (rows_i - row) / rows_f
            p = (
                1.0
                - _np.power(1.0 - above, size_arr)
                - _np.power(1.0 - below, size_arr)
                + _np.power(1.0 / rows_f, size_arr)
            )
            return _np.maximum(0.0, p)

        low = ((rows_i + 1) // 2).astype(_np.float64)
        high = ((rows_i + 2) // 2).astype(_np.float64)
        probs = (at_row(low) + at_row(high)) / 2.0
        return _np.where(
            (rows_i < 3) | (size_arr[None, :] < 2), 0.0, probs
        )

    def _guarded_mean(
        self, mean: float, histogram, rows: int, model: str
    ) -> float:
        if not math.isfinite(mean):
            self._counters["feedthrough_fallbacks"] += 1
            return kernels.feedthrough_mean_for_histogram(
                histogram, rows, model
            )
        delta = mean - round(mean)
        if abs(delta - ROUND_EPSILON) <= NEAR_INTEGER_GUARD:
            # Inside the round_up discontinuity window: defer to the
            # exact accumulation so the estimator's integer is right.
            self._counters["feedthrough_fallbacks"] += 1
            return kernels.feedthrough_mean_for_histogram(
                histogram, rows, model
            )
        return mean

    def _feedthrough_means(self, histogram, row_counts, model: str):
        size_arr = _np.asarray(
            [components for components, _ in histogram], dtype=_np.float64
        )
        counts = _np.asarray(
            [count for _, count in histogram], dtype=_np.float64
        )
        means = self._feedthrough_matrix(size_arr, row_counts) @ counts
        return tuple(
            self._guarded_mean(float(mean), histogram, rows, model)
            for mean, rows in zip(means, row_counts)
        )

    def feedthrough_mean_for_histogram(
        self,
        histogram: Sequence[Tuple[int, int]],
        rows: int,
        model: str,
    ) -> float:
        histogram = tuple(histogram)
        self._validate(rows, model=model)
        self._counters["evaluations"] += 1
        if not histogram:
            return 0.0
        if model != "general":
            # The two-component model is one scalar per row count; the
            # exact kernel's memoized closed form is already optimal.
            return kernels.feedthrough_mean_for_histogram(
                histogram, rows, model
            )
        return self._feedthrough_means(histogram, (rows,), model)[0]

    def feedthrough_means_for_rows(
        self,
        histogram: Sequence[Tuple[int, int]],
        row_counts: Sequence[int],
        model: str,
    ) -> Tuple[float, ...]:
        histogram = tuple(histogram)
        row_counts = tuple(row_counts)
        for rows in row_counts:
            self._validate(rows, model=model)
        self._counters["batched_evaluations"] += 1
        if not histogram or not row_counts:
            return tuple(0.0 for _ in row_counts)
        if model != "general":
            return tuple(
                kernels.feedthrough_mean_for_histogram(histogram, rows, model)
                for rows in row_counts
            )
        return self._feedthrough_means(histogram, row_counts, model)

    # ------------------------------------------------------------------
    # per-channel crossing probabilities (the congestion model)
    # ------------------------------------------------------------------
    def _crossing_grid(self, sizes, rows: int):
        """Crossing probability per (channel 0..rows, histogram entry).

        The exponentiations run through :func:`_vector_power`, the
        elementwise mirror of the scalar kernel's ladder, and the
        surrounding subtractions/clamps are the same IEEE operations in
        the same order — so every element is bit-identical to
        :func:`repro.perf.kernels.channel_crossing_probability`.
        """
        rows_f = float(rows)
        channels = _np.arange(0, rows + 1, dtype=_np.float64)
        below = channels / rows_f
        above = (rows_f - channels) / rows_f
        grid = _np.zeros((rows + 1, len(sizes)))
        for j, components in enumerate(sizes):
            if components < 2:
                continue
            single = kernels.binary_float_power(1.0 / rows, components)
            below_power = _vector_power(below, components)
            above_power = _vector_power(above, components)
            # Larger term subtracted first, as in the scalar kernel:
            # keeps the float grid symmetric under k <-> rows - k.
            column = (
                1.0
                - _np.maximum(below_power, above_power)
                - _np.minimum(below_power, above_power)
                + single
            )
            grid[:, j] = _np.minimum(1.0, _np.maximum(0.0, column))
        grid[0, :] = 0.0  # channel 0 is never used by the router
        return grid

    def crossing_probabilities(
        self,
        histogram: Sequence[Tuple[int, int]],
        rows: int,
    ) -> Tuple[Tuple[float, ...], ...]:
        """Per-channel crossing probabilities, ``result[k][j]`` for
        channel ``k`` (0..rows) and histogram entry ``j``.

        Bit-identical to the exact backend by construction (see
        :func:`_crossing_grid`); the guard band still hands any
        non-finite element — impossible outside fault injection, but
        the scheme is uniform across kernels — back to the exact
        kernel, counted in ``congestion_fallbacks``.
        """
        histogram = tuple(histogram)
        self._validate(rows)
        self._counters["evaluations"] += 1
        if not histogram:
            return tuple(() for _ in range(rows + 1))
        sizes = [components for components, _ in histogram]
        grid = self._crossing_grid(sizes, rows)
        risky = ~_np.isfinite(grid)
        result = []
        for channel in range(rows + 1):
            values = grid[channel]
            if risky[channel].any():
                values = values.copy()
                for j in _np.nonzero(risky[channel])[0]:
                    self._counters["congestion_fallbacks"] += 1
                    values[j] = kernels.channel_crossing_probability(
                        sizes[j], rows, channel
                    )
            result.append(tuple(float(value) for value in values))
        return tuple(result)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _validate(self, rows: int, mode: Optional[str] = None,
                  model: Optional[str] = None) -> None:
        if _np is None:
            from repro.errors import BackendUnavailableError

            raise BackendUnavailableError(
                "the numpy backend cannot evaluate: NumPy is not installed"
            )
        if rows < 1:
            raise EstimationError(f"rows must be >= 1, got {rows}")
        if mode is not None and mode not in kernels.ROW_SPREAD_MODES:
            raise EstimationError(
                f"unknown row-spread mode {mode!r} (expected one of "
                f"{kernels.ROW_SPREAD_MODES})"
            )
        if model is not None and model not in ("two-component", "general"):
            raise EstimationError(
                f"unknown feed-through model {model!r} "
                "(expected 'two-component' or 'general')"
            )

    def reset(self) -> None:
        """Drop the grown tables and zero the counters (bench phases
        start cold)."""
        if self._tables is not None:
            self._tables.clear()
        for name in self._counters:
            self._counters[name] = 0

    def stats(self) -> dict:
        tables = self._tables
        return {
            **self._counters,
            "table_growths": tables.growths if tables is not None else 0,
            "triangle_depth": (
                0 if tables is None or tables.log_b is None
                else int(tables.log_b.shape[0])
            ),
            "guard": NEAR_INTEGER_GUARD,
        }


__all__ = ["NumpyBackend", "NEAR_INTEGER_GUARD", "ROUND_EPSILON"]
