"""Liberty (``.lib``) cell-library reader.

Liberty is the interchange format synthesis flows consume; the
estimator only needs the slice ``yosys``'s ``stat -liberty`` uses to
report chip area: cell names, pin directions (for pin counts), and
per-cell ``area`` attributes.  :func:`parse_liberty` extracts exactly
that slice into :class:`LibertyLibrary`;
:func:`process_from_liberty` projects a library onto a
:class:`~repro.technology.process.ProcessDatabase` so ingested
netlists estimate under the library's own cell footprints.

Validation follows the ``KernelCacheError`` pattern for external
artifacts: the *whole* file is parsed and checked — balanced braces,
no duplicate cells, an ``area`` on every cell — before any library
object is constructed, so a truncated or inconsistent ``.lib`` raises
:class:`~repro.errors.FrontendError` without leaving partial state
behind.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import FrontendError
from repro.netlist.model import Module
from repro.technology.process import DeviceKind, DeviceType, ProcessDatabase

_TOKEN_RE = re.compile(
    r"""
    (?P<string>"[^"]*")
  | (?P<punct>[{}();:,])
  | (?P<word>[^\s{}();:,"]+)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class LibertyCell:
    """One library cell: name, area, and (pin, direction) pairs."""

    name: str
    area: float
    pins: Tuple[Tuple[str, str], ...] = ()

    @property
    def pin_count(self) -> int:
        return len(self.pins)

    @property
    def input_pins(self) -> Tuple[str, ...]:
        return tuple(name for name, d in self.pins if d != "output")

    @property
    def output_pins(self) -> Tuple[str, ...]:
        return tuple(name for name, d in self.pins if d == "output")


@dataclass(frozen=True)
class LibertyLibrary:
    """An immutable snapshot of a parsed ``.lib`` file."""

    name: str
    cells: Tuple[LibertyCell, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_by_name", {cell.name: cell for cell in self.cells}
        )

    def cell(self, name: str) -> LibertyCell:
        cell = self._by_name.get(name)
        if cell is None:
            raise FrontendError(
                f"library {self.name!r}: unknown cell {name!r} "
                f"(knows: {', '.join(sorted(self._by_name))})"
            )
        return cell

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def bind(self, module: Module) -> None:
        """Check every device cell of ``module`` against the library.

        Collects *all* unknown cells before raising, so one error
        message names the full gap between netlist and library; the
        module and library are never mutated.
        """
        unknown = sorted({
            device.cell for device in module.devices
            if device.cell not in self._by_name
        })
        if unknown:
            raise FrontendError(
                f"module {module.name!r} references cell(s) not in "
                f"library {self.name!r}: {', '.join(unknown)}"
            )

    def module_area(self, module: Module) -> float:
        """Sum of instance cell areas — exactly the chip area
        ``yosys``'s ``stat -liberty`` reports for a mapped netlist."""
        self.bind(module)
        return sum(
            self._by_name[device.cell].area for device in module.devices
        )


def read_liberty(path: Union[str, Path]) -> LibertyLibrary:
    """Parse a ``.lib`` file from disk."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise FrontendError(f"cannot read liberty file {path}: {exc}") from exc
    return parse_liberty(text, str(path))


def parse_liberty(text: str, filename: str = "<string>") -> LibertyLibrary:
    """Parse Liberty source into a :class:`LibertyLibrary`.

    Unknown attributes and groups (timing arcs, lookup tables, ...)
    are skipped structurally; malformed structure — unbalanced braces,
    a truncated file, duplicate cells, a cell without ``area`` —
    raises :class:`FrontendError` before any library state exists.
    """
    tokens = _tokenize(text)
    parser = _Parser(tokens, filename)
    name, groups = parser.parse_top()
    cells: List[LibertyCell] = []
    seen: Dict[str, int] = {}
    problems: List[str] = []
    for cell_name, cell_body in groups:
        if cell_name in seen:
            problems.append(f"duplicate cell definition {cell_name!r}")
            continue
        seen[cell_name] = 1
        area, pins = cell_body
        if area is None:
            problems.append(f"cell {cell_name!r} has no area attribute")
            continue
        cells.append(LibertyCell(cell_name, area, tuple(pins)))
    if problems:
        raise FrontendError(
            f"{filename}: invalid liberty library {name!r}: "
            + "; ".join(problems)
        )
    if not cells:
        raise FrontendError(
            f"{filename}: library {name!r} defines no cells"
        )
    return LibertyLibrary(name, tuple(cells))


def process_from_liberty(
    library: LibertyLibrary,
    template: Optional[ProcessDatabase] = None,
) -> ProcessDatabase:
    """Project a Liberty library onto a process database.

    Row geometry (row height, pitches, channel capacity) comes from
    ``template`` (default: the shipped CMOS process); each Liberty
    cell becomes a GATE device type whose width is derived from its
    ``area`` attribute at the template's row height:
    ``width_lambda = area_um2 / (row_height_lambda * lambda_um^2)``.
    """
    if template is None:
        from repro.technology.libraries import cmos_process

        template = cmos_process()
    process = ProcessDatabase(
        name=f"{template.name}+{library.name}",
        lambda_um=template.lambda_um,
        row_height=template.row_height,
        feedthrough_width=template.feedthrough_width,
        track_pitch=template.track_pitch,
        port_pitch=template.port_pitch,
        channel_capacity=template.channel_capacity,
        description=(
            f"liberty library {library.name!r} on the row geometry of "
            f"{template.name}"
        ),
    )
    square_lambda = template.lambda_um ** 2
    for cell in library.cells:
        width = cell.area / (template.row_height * square_lambda)
        process.register(DeviceType(
            cell.name, width, template.row_height, DeviceKind.GATE,
            max(cell.pin_count, 2),
            f"liberty cell, area {cell.area:g} um^2",
        ))
    return process.validate()


# ----------------------------------------------------------------------
# tokeniser / recursive-descent structure parser
# ----------------------------------------------------------------------
def _tokenize(text: str) -> List[str]:
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    text = re.sub(r"//[^\n]*", " ", text)
    text = text.replace("\\\n", " ")
    return [match.group(0) for match in _TOKEN_RE.finditer(text)]


class _Parser:
    """Walks the token stream, keeping only cell/pin/area structure."""

    def __init__(self, tokens: List[str], filename: str):
        self._tokens = tokens
        self._index = 0
        self._filename = filename

    def _next(self) -> str:
        if self._index >= len(self._tokens):
            raise FrontendError(
                f"{self._filename}: truncated liberty file "
                "(unexpected end of input)"
            )
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _peek(self) -> Optional[str]:
        if self._index >= len(self._tokens):
            return None
        return self._tokens[self._index]

    def parse_top(self):
        """``library (name) { ... }`` -> (name, [(cell, body), ...])."""
        keyword = self._next()
        if keyword != "library":
            raise FrontendError(
                f"{self._filename}: expected 'library(...)' at top "
                f"level, got {keyword!r}"
            )
        name = self._group_args()
        self._expect("{")
        cells = []
        self._walk_group(depth=1, cells=cells)
        if self._peek() is not None:
            raise FrontendError(
                f"{self._filename}: trailing input after the library "
                "group"
            )
        return name, cells

    def _expect(self, token: str) -> None:
        got = self._next()
        if got != token:
            raise FrontendError(
                f"{self._filename}: expected {token!r}, got {got!r}"
            )

    def _group_args(self) -> str:
        self._expect("(")
        args = []
        while True:
            token = self._next()
            if token == ")":
                break
            if token != ",":
                args.append(token.strip('"'))
        return " ".join(args)

    def _walk_group(self, depth: int, cells: List) -> None:
        """Consume a ``{ ... }`` body, collecting ``cell`` subgroups."""
        while True:
            token = self._next()
            if token == "}":
                return
            if token == "{":
                # anonymous nested group (shouldn't occur, but keep
                # the brace accounting honest)
                self._walk_group(depth + 1, [])
                continue
            if self._peek() == "(":
                args = self._group_args()
                if self._peek() == "{":
                    self._next()
                    if token == "cell":
                        cells.append((args, self._parse_cell()))
                    else:
                        self._walk_group(depth + 1, cells=[])
                # else: a simple statement like define(...); fall
                # through — an optional ';' is consumed below
            if self._peek() == ";":
                self._next()

    def _parse_cell(self):
        """Inside ``cell(NAME) { ... }``: pick up area and pins."""
        area: Optional[float] = None
        pins: List[Tuple[str, str]] = []
        while True:
            token = self._next()
            if token == "}":
                return area, pins
            if token == ":":
                continue
            if self._peek() == ":":
                self._next()
                value = self._next()
                if token == "area":
                    try:
                        area = float(value.strip('"'))
                    except ValueError:
                        raise FrontendError(
                            f"{self._filename}: malformed area value "
                            f"{value!r}"
                        ) from None
                if self._peek() == ";":
                    self._next()
                continue
            if self._peek() == "(":
                args = self._group_args()
                if self._peek() == "{":
                    self._next()
                    if token in ("pin", "bus", "pg_pin"):
                        pins.extend(self._parse_pin(args, token))
                    else:
                        self._walk_group(depth=1, cells=[])
                if self._peek() == ";":
                    self._next()

    def _parse_pin(self, name: str, kind: str) -> List[Tuple[str, str]]:
        """Inside ``pin(NAME) { ... }``: pick up the direction."""
        direction = "input"
        nested: List[Tuple[str, str]] = []
        while True:
            token = self._next()
            if token == "}":
                break
            if self._peek() == ":":
                self._next()
                value = self._next().strip('";')
                if token == "direction":
                    direction = value
                if self._peek() == ";":
                    self._next()
                continue
            if self._peek() == "(":
                args = self._group_args()
                if self._peek() == "{":
                    self._next()
                    if token == "pin":
                        nested.extend(self._parse_pin(args, "pin"))
                    else:
                        self._walk_group(depth=1, cells=[])
                if self._peek() == ";":
                    self._next()
        if kind == "pg_pin":
            return nested
        return [(name, direction)] + nested
