"""Per-library calibration of the estimator against Liberty areas.

The estimator predicts module area in square lambda from the paper's
Eq. 12 model; a synthesis flow reports chip area in the Liberty
library's own square-micron ``area`` units (``yosys stat -liberty``:
the sum of instance cell areas).  The two live on different scales
and count different things — Eq. 12 includes routing tracks and
feed-throughs, the Liberty sum is active cell area only — so a single
per-library *correction factor* relates them, exactly the
``YosysAreaCalculator`` pattern of multiplying a raw cell-area sum by
a fitted overhead (its ``pdn_margin``, a power-grid allowance, is the
configurable ``--pdn-margin`` here).

``mae calibrate`` fits the factor by least squares over the committed
golden corpus (``tests/fixtures/frontend/``): minimise
``sum((ref - f * est)^2)`` giving ``f = sum(est*ref) / sum(est^2)``,
then records the per-design residual band as the *stated accuracy* of
the calibrated frontend.  The result is committed as
``VERIFY_frontend_envelope.json`` and gated by
``mae verify --check frontend_accuracy``: if parser, estimator, or
fixtures drift so that the refitted factor moves or a residual leaves
the committed band, the gate fails with a reviewable diff.

Everything here is hermetic — the reference areas come from the
committed toy ``.lib``, not from a ``yosys`` binary; the nightly CI
job swaps in real synthesis output for the same pipeline.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.config import EstimatorConfig
from repro.errors import FrontendError, VerificationError
from repro.netlist.model import Module
from repro.technology.process import ProcessDatabase

#: Artifact schema, bumped on shape changes.
FRONTEND_ENVELOPE_SCHEMA_VERSION = 1

#: Default power-grid / overhead allowance multiplied onto the Liberty
#: cell-area sum before fitting (the SNIPPETS ``pdn_margin``).
DEFAULT_PDN_MARGIN = 1.4

#: Absolute residual slack added around the measured band when the
#: envelope is committed, so the gate tolerates new fixtures of the
#: same character without refitting.
DEFAULT_SLACK = 0.05

#: Environment override for the fixture directory.
FIXTURES_ENV = "MAE_FRONTEND_FIXTURES"


def fixtures_root() -> Path:
    """The golden-fixture directory (``$MAE_FRONTEND_FIXTURES`` wins,
    else the committed ``tests/fixtures/frontend/``)."""
    override = os.environ.get(FIXTURES_ENV)
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "tests" / "fixtures" / (
        "frontend"
    )


def default_envelope_path() -> Path:
    """Where the committed accuracy artifact lives (repo root)."""
    return Path(__file__).resolve().parents[3] / (
        "VERIFY_frontend_envelope.json"
    )


def fixture_blifs(root: Optional[Union[str, Path]] = None) -> List[Path]:
    """The committed golden BLIF designs, sorted by name."""
    root = Path(root) if root is not None else fixtures_root()
    if not root.is_dir():
        raise FrontendError(
            f"frontend fixture directory {root} does not exist "
            f"(set ${FIXTURES_ENV} to relocate it)"
        )
    paths = sorted(root.glob("*.blif"))
    if not paths:
        raise FrontendError(f"no .blif fixtures under {root}")
    return paths


def fixture_liberty(root: Optional[Union[str, Path]] = None) -> Path:
    """The committed toy Liberty library next to the BLIF fixtures."""
    root = Path(root) if root is not None else fixtures_root()
    paths = sorted(root.glob("*.lib"))
    if len(paths) != 1:
        raise FrontendError(
            f"expected exactly one .lib under {root}, found {len(paths)}"
        )
    return paths[0]


def reference_area(
    module: Module, library, pdn_margin: float = DEFAULT_PDN_MARGIN
) -> float:
    """Ground-truth area: Liberty cell-area sum times the PDN margin
    (identical to ``yosys stat -liberty`` chip area times the margin,
    but computable without a binary)."""
    if pdn_margin <= 0:
        raise FrontendError(
            f"pdn margin must be positive, got {pdn_margin}"
        )
    return library.module_area(module) * pdn_margin


def estimated_area(
    module: Module,
    process: ProcessDatabase,
    config: Optional[EstimatorConfig] = None,
) -> float:
    """The estimator's standard-cell area (square lambda) through the
    canonical facade path."""
    from repro.core.estimator import ModuleAreaEstimator

    record = ModuleAreaEstimator(process, config).estimate(
        module, ("standard-cell",)
    )
    return record.standard_cell.area


def fit_correction_factor(
    pairs: Iterable[Tuple[float, float]]
) -> float:
    """Least-squares scalar fit of reference = f * estimate.

    Minimises ``sum((ref - f*est)^2)`` over (estimate, reference)
    pairs: ``f = sum(est*ref) / sum(est^2)``.
    """
    num = 0.0
    den = 0.0
    count = 0
    for estimate, reference in pairs:
        num += estimate * reference
        den += estimate * estimate
        count += 1
    if count == 0 or den <= 0.0:
        raise FrontendError(
            "cannot fit a correction factor: no cases with a positive "
            "estimated area"
        )
    return num / den


@dataclasses.dataclass(frozen=True)
class FrontendEnvelopePoint:
    """One golden design's calibrated residual."""

    design: str
    devices: int
    estimated: float             # estimator area (square lambda)
    reference: float             # Liberty sum * pdn_margin (um^2)
    residual: float              # factor*estimated/reference - 1
    within: bool

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def measure_frontend_envelope(
    root: Optional[Union[str, Path]] = None,
    process: Optional[ProcessDatabase] = None,
    pdn_margin: float = DEFAULT_PDN_MARGIN,
    slack: float = DEFAULT_SLACK,
    bounds: Optional[Tuple[float, float]] = None,
) -> dict:
    """Fit the correction factor over the golden corpus and build the
    envelope record.

    With ``bounds`` (a committed ``(low, high)`` residual band), each
    case is gated against it; without, the band is *derived* from the
    measured residuals widened by ``slack`` — the calibration mode
    that produces the artifact to commit.
    """
    from repro.frontend.blif import parse_blif
    from repro.frontend.liberty import read_liberty

    if process is None:
        from repro.technology.libraries import cmos_process

        process = cmos_process()
    if slack < 0:
        raise FrontendError(f"slack must be >= 0, got {slack}")
    library = read_liberty(fixture_liberty(root))
    cases: List[Tuple[str, Module, float, float]] = []
    for path in fixture_blifs(root):
        module = parse_blif(path.read_text(), str(path))
        cases.append((
            path.stem,
            module,
            estimated_area(module, process),
            reference_area(module, library, pdn_margin),
        ))
    factor = fit_correction_factor(
        (estimate, reference) for _, _, estimate, reference in cases
    )
    residuals = [
        factor * estimate / reference - 1.0
        for _, _, estimate, reference in cases
    ]
    if bounds is None:
        low = min(residuals) - slack
        high = max(residuals) + slack
    else:
        low, high = bounds
    points = [
        FrontendEnvelopePoint(
            design=design,
            devices=module.device_count,
            estimated=estimate,
            reference=reference,
            residual=residual,
            within=low <= residual <= high,
        )
        for (design, module, estimate, reference), residual
        in zip(cases, residuals)
    ]
    return {
        "schema_version": FRONTEND_ENVELOPE_SCHEMA_VERSION,
        "benchmark": "frontend_envelope",
        "library": library.name,
        "process": process.name,
        "pdn_margin": pdn_margin,
        "slack": slack,
        "factor": factor,
        "bounds": {"low": low, "high": high},
        "cases": [point.to_dict() for point in points],
        "summary": {
            "cases": len(points),
            "violations": sum(1 for point in points if not point.within),
            "min_residual": min(residuals),
            "max_residual": max(residuals),
        },
    }


def save_frontend_envelope(record: dict, path: Union[str, Path]) -> None:
    """Write the artifact (sorted keys, trailing newline — the
    committed-diff format)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_frontend_envelope(path: Union[str, Path]) -> dict:
    """Read an envelope artifact back, validating the schema version."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
    except OSError as exc:
        raise VerificationError(
            f"cannot read frontend envelope {path}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise VerificationError(
            f"frontend envelope {path} is not valid JSON: {exc}"
        ) from exc
    if record.get("schema_version") != FRONTEND_ENVELOPE_SCHEMA_VERSION:
        raise VerificationError(
            f"frontend envelope {path!r}: schema "
            f"{record.get('schema_version')!r} != "
            f"{FRONTEND_ENVELOPE_SCHEMA_VERSION}"
        )
    return record
