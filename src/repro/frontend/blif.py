"""Technology-mapped BLIF parser.

BLIF is what logic synthesis writes: ``yosys``'s ``abc -liberty`` flow
emits one ``.gate`` line per mapped library cell.  This parser accepts
the structural subset of the Berkeley Logic Interchange Format that
mapped netlists use:

* ``.model name`` ... ``.end``
* ``.inputs`` / ``.outputs`` (repeatable, ``\\`` line continuation)
* ``.gate CELL pin=net ...`` — a mapped cell instance
* ``.subckt CELL pin=net ...`` — treated identically (an instance of a
  library cell or macro; the estimator's module model is flat)
* ``.latch input output [type control] [init]`` — mapped onto the
  shipped sequential cells (``DFF`` for edge types, ``DLATCH`` for
  level types); an unnamed ``NIL`` control becomes the conventional
  global ``clk`` net
* zero-input ``.names`` constant drivers (``$false``/``$true``), which
  contribute no device and are skipped

Multi-input ``.names`` cover tables are *unmapped* logic and raise
:class:`~repro.errors.ParseError` telling the user to finish the
mapping (``abc -liberty``) first — estimating a sum-of-products table
as if it were a cell would silently misreport area.

BLIF names may contain characters structural Verilog identifiers
cannot (``$abc$123$n7``, ``data[3]``).  Every model, net, and pin name
is sanitised onto the identifier subset shared by the Verilog writer
and parser, with deterministic collision suffixes, so an ingested
module survives the write_verilog/parse_verilog round trip (which the
service path exercises on every session) bit-identically.

``.gate`` instances are anonymous in BLIF; instances are named
``g0, g1, ...`` in file order, so a reparse of the written module is
device-for-device identical.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Tuple

from repro.errors import ParseError
from repro.netlist.model import Device, Module, Port, PortDirection
from repro.netlist.validate import validate_module

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_$]*")

#: ``.latch`` trigger types -> (cell, control pin) in the shipped
#: libraries.  ``re``/``fe`` (rising/falling edge) map to the DFF;
#: ``ah``/``al``/``as`` (active-high/low, asynchronous) to the DLATCH.
_LATCH_CELLS = {
    "re": ("DFF", "ck"),
    "fe": ("DFF", "ck"),
    "ah": ("DLATCH", "en"),
    "al": ("DLATCH", "en"),
    "as": ("DLATCH", "en"),
}


def parse_blif(text: str, filename: str = "<string>") -> Module:
    """Parse BLIF source into a single :class:`Module`.

    Exactly one ``.model`` is expected; use :func:`parse_blif_library`
    for multi-model files.
    """
    modules = parse_blif_library(text, filename)
    if len(modules) != 1:
        raise ParseError(
            f"expected exactly one .model, found {len(modules)}", filename
        )
    return modules[0]


def parse_blif_library(text: str, filename: str = "<string>") -> List[Module]:
    """Parse a BLIF file containing one or more ``.model`` blocks."""
    lines = list(_logical_lines(text, filename))
    modules: List[Module] = []
    index = 0
    while index < len(lines):
        statement, line = lines[index]
        if not statement.startswith(".model"):
            raise ParseError(
                f"expected '.model', got {statement.split()[0]!r}",
                filename, line,
            )
        module, index = _parse_model(lines, index, filename)
        validate_module(module)
        modules.append(module)
    return modules


# ----------------------------------------------------------------------
# tokenisation: strip comments, join '\' continuations
# ----------------------------------------------------------------------
def _logical_lines(text: str, filename: str) -> Iterator[Tuple[str, int]]:
    buffer: List[str] = []
    start_line = 0
    for number, raw in enumerate(text.splitlines(), start=1):
        hash_at = raw.find("#")
        if hash_at >= 0:
            raw = raw[:hash_at]
        stripped = raw.strip()
        if not stripped and not buffer:
            continue
        if not buffer:
            start_line = number
        if stripped.endswith("\\"):
            buffer.append(stripped[:-1].strip())
            continue
        buffer.append(stripped)
        joined = " ".join(part for part in buffer if part)
        buffer = []
        if joined:
            yield joined, start_line
    if buffer:
        raise ParseError(
            "file ends inside a '\\' line continuation",
            filename, start_line,
        )


# ----------------------------------------------------------------------
# grammar
# ----------------------------------------------------------------------
def _parse_model(
    lines: List[Tuple[str, int]], index: int, filename: str
) -> Tuple[Module, int]:
    header, line = lines[index]
    tokens = header.split()
    if len(tokens) != 2:
        raise ParseError(
            f"malformed .model header: {header!r}", filename, line
        )
    names = _Namer()
    model_name = names.resolve(tokens[1])

    inputs: List[str] = []
    outputs: List[str] = []
    #: (cell, {pin: net}) in file order; devices are named afterwards.
    instances: List[Tuple[str, Dict[str, str]]] = []

    index += 1
    while index < len(lines):
        statement, line = lines[index]
        index += 1
        keyword = statement.split()[0]
        if keyword == ".end":
            break
        if keyword == ".model":
            index -= 1
            break
        if keyword in (".inputs", ".outputs"):
            target = inputs if keyword == ".inputs" else outputs
            for token in statement.split()[1:]:
                target.append(names.resolve(token))
        elif keyword in (".gate", ".subckt"):
            instances.append(
                _parse_instance(statement, names, filename, line)
            )
        elif keyword == ".latch":
            instances.append(
                _parse_latch(statement, names, filename, line)
            )
        elif keyword == ".names":
            index = _skip_names(statement, lines, index, filename, line)
        else:
            raise ParseError(
                f"unsupported BLIF construct {keyword!r}", filename, line
            )

    return _assemble(model_name, inputs, outputs, instances,
                     filename, line), index


def _parse_instance(
    statement: str, names: "_Namer", filename: str, line: int
) -> Tuple[str, Dict[str, str]]:
    tokens = statement.split()
    if len(tokens) < 3:
        raise ParseError(
            f"malformed {tokens[0]} line (need a cell and at least one "
            f"pin=net): {statement!r}",
            filename, line,
        )
    cell = tokens[1]
    if not _IDENT_RE.fullmatch(cell):
        raise ParseError(
            f"malformed cell name {cell!r}", filename, line
        )
    pins: Dict[str, str] = {}
    for token in tokens[2:]:
        pin, equals, net = token.partition("=")
        if not equals or not pin or not net:
            raise ParseError(
                f"malformed pin connection {token!r} (expected pin=net)",
                filename, line,
            )
        pin = _sanitize(pin)
        if pin in pins:
            raise ParseError(
                f"cell {cell!r}: pin {pin!r} connected twice",
                filename, line,
            )
        pins[pin] = names.resolve(net)
    return cell, pins


def _parse_latch(
    statement: str, names: "_Namer", filename: str, line: int
) -> Tuple[str, Dict[str, str]]:
    tokens = statement.split()[1:]
    # .latch input output [type control] [init-val]
    if len(tokens) in (3, 5) and tokens[-1] in ("0", "1", "2", "3"):
        tokens = tokens[:-1]
    if len(tokens) not in (2, 4):
        raise ParseError(
            f"malformed .latch line: {statement!r}", filename, line
        )
    data, output = tokens[0], tokens[1]
    trigger, control = ("re", "NIL") if len(tokens) == 2 else tokens[2:4]
    if trigger not in _LATCH_CELLS:
        raise ParseError(
            f".latch trigger type {trigger!r} not in "
            f"{sorted(_LATCH_CELLS)}",
            filename, line,
        )
    cell, control_pin = _LATCH_CELLS[trigger]
    control_net = "clk" if control == "NIL" else control
    return cell, {
        "d": names.resolve(data),
        control_pin: names.resolve(control_net),
        "q": names.resolve(output),
    }


def _skip_names(
    statement: str,
    lines: List[Tuple[str, int]],
    index: int,
    filename: str,
    line: int,
) -> int:
    """Zero-input ``.names`` (constant drivers) are skipped along with
    their cover rows; anything wider is unmapped logic."""
    tokens = statement.split()
    if len(tokens) > 2:
        raise ParseError(
            f".names with logic inputs is unmapped logic: {statement!r} "
            "— run the netlist through technology mapping "
            "(e.g. yosys 'abc -liberty') before estimating",
            filename, line,
        )
    while index < len(lines):
        cover, _ = lines[index]
        if cover.startswith("."):
            break
        if not re.fullmatch(r"[01-]+(?: [01])?", cover):
            raise ParseError(
                f"malformed cover row {cover!r}", filename, line
            )
        index += 1
    return index


def _assemble(
    name: str,
    inputs: List[str],
    outputs: List[str],
    instances: List[Tuple[str, Dict[str, str]]],
    filename: str,
    line: int,
) -> Module:
    module = Module(name)
    seen = set()
    for net, direction in (
        [(net, PortDirection.INPUT) for net in inputs]
        + [(net, PortDirection.OUTPUT) for net in outputs]
    ):
        if net in seen:
            raise ParseError(
                f"model {name!r}: net {net!r} listed twice in "
                ".inputs/.outputs",
                filename, line,
            )
        seen.add(net)
        module.add_port(Port(net, direction))
    for position, (cell, pins) in enumerate(instances):
        module.add_device(Device(f"g{position}", cell, pins))
    return module


# ----------------------------------------------------------------------
# name sanitisation
# ----------------------------------------------------------------------
def _sanitize(name: str) -> str:
    clean = re.sub(r"[^A-Za-z0-9_$]", "_", name)
    if not clean or not re.match(r"[A-Za-z_]", clean):
        clean = "_" + clean
    return clean


class _Namer:
    """Maps raw BLIF names onto unique sanitised identifiers.

    The same raw name always resolves to the same identifier; two raw
    names that sanitise identically get deterministic ``_2``, ``_3``
    suffixes in first-seen order.
    """

    def __init__(self) -> None:
        self._by_raw: Dict[str, str] = {}
        self._used: set = set()

    def resolve(self, raw: str) -> str:
        known = self._by_raw.get(raw)
        if known is not None:
            return known
        base = _sanitize(raw)
        unique = base
        suffix = 2
        while unique in self._used:
            unique = f"{base}_{suffix}"
            suffix += 1
        self._used.add(unique)
        self._by_raw[raw] = unique
        return unique
