"""Real-netlist frontend: BLIF ingestion, Liberty libraries, synthesis.

The paper's estimator reads schematics "expressed in a standard
hardware description language"; this package opens that front door to
real synthesis output.  :mod:`repro.frontend.blif` parses technology-
mapped BLIF (what ``yosys``'s ``abc -liberty`` flow writes) onto the
same flat :class:`~repro.netlist.model.Module` every other parser
produces, so the canonical ``build_statistics`` scan path — and with
it the plan cache, backends, incremental engine, service, and
congestion model — works on ingested netlists unchanged.
:mod:`repro.frontend.liberty` reads cell names, pin directions, and
cell areas out of a Liberty ``.lib`` file into
:mod:`repro.technology` terms; :mod:`repro.frontend.yosys` drives an
optional ``yosys`` binary through the read_liberty → synth →
dfflibmap → abc → stat flow; and :mod:`repro.frontend.calibrate` fits
a per-library correction factor between the estimator and the
library-reported chip area (``mae calibrate``), committed as the
``VERIFY_frontend_envelope.json`` accuracy gate.
"""

from repro.frontend.blif import parse_blif, parse_blif_library
from repro.frontend.calibrate import (
    DEFAULT_PDN_MARGIN,
    FRONTEND_ENVELOPE_SCHEMA_VERSION,
    FrontendEnvelopePoint,
    fit_correction_factor,
    fixture_blifs,
    fixture_liberty,
    fixtures_root,
    load_frontend_envelope,
    measure_frontend_envelope,
    reference_area,
    save_frontend_envelope,
)
from repro.frontend.liberty import (
    LibertyCell,
    LibertyLibrary,
    parse_liberty,
    process_from_liberty,
    read_liberty,
)
from repro.frontend.yosys import (
    SynthesisResult,
    find_yosys,
    run_yosys_flow,
)

__all__ = [
    "DEFAULT_PDN_MARGIN",
    "FRONTEND_ENVELOPE_SCHEMA_VERSION",
    "FrontendEnvelopePoint",
    "LibertyCell",
    "LibertyLibrary",
    "SynthesisResult",
    "find_yosys",
    "fit_correction_factor",
    "fixture_blifs",
    "fixture_liberty",
    "fixtures_root",
    "load_frontend_envelope",
    "measure_frontend_envelope",
    "parse_blif",
    "parse_blif_library",
    "parse_liberty",
    "process_from_liberty",
    "read_liberty",
    "reference_area",
    "run_yosys_flow",
    "save_frontend_envelope",
]
