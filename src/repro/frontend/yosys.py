"""Optional ``yosys`` synthesis driver (``mae synth``).

Runs the standard Liberty-mapped synthesis recipe — read_liberty →
read_verilog → hierarchy → proc/opt/fsm/memory/techmap → dfflibmap →
abc → stat — and extracts the chip area that ``stat -liberty``
reports.  That area is the external ground truth the calibration
harness (:mod:`repro.frontend.calibrate`) fits the estimator against.

The binary is strictly optional: :func:`find_yosys` probes ``PATH``
(override with ``$MAE_YOSYS``), and ``mae synth`` skips gracefully
when no binary exists, so the whole frontend suite — fixtures,
calibration, and the ``frontend_accuracy`` verify gate — runs
hermetically.  On a mapped netlist the ``stat -liberty`` chip area is
by construction the sum of instance Liberty cell areas, which
:meth:`~repro.frontend.liberty.LibertyLibrary.module_area` computes
without a binary; the nightly CI job installs yosys and closes the
loop end to end.
"""

from __future__ import annotations

import os
import re
import shutil
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.errors import FrontendError

#: How the reported chip area appears in ``stat -liberty`` output.
CHIP_AREA_RE = re.compile(
    r"Chip area for (?:top )?module\s+'?\\?([^':\s]*)'?\s*:\s*\"?"
    r"([\d.]+)\"?"
)

#: Cell usage rows in the ``stat`` table (``     12  NAND2``).
CELL_COUNT_RE = re.compile(r"^\s+(\d+)\s+\\?([A-Za-z_][A-Za-z0-9_$]*)\s*$")


@dataclass(frozen=True)
class SynthesisResult:
    """What one ``mae synth`` run learned."""

    top: str
    chip_area_um2: float
    cell_counts: Tuple[Tuple[str, int], ...] = ()
    blif_path: Optional[str] = None
    log: str = field(default="", repr=False)

    def to_dict(self) -> dict:
        return {
            "top": self.top,
            "chip_area_um2": self.chip_area_um2,
            "cell_counts": {name: count for name, count in self.cell_counts},
            "blif_path": self.blif_path,
        }


def find_yosys(explicit: Optional[str] = None) -> Optional[str]:
    """Locate a ``yosys`` binary, or None when the host has none.

    Resolution order: the ``explicit`` argument, ``$MAE_YOSYS``, then
    ``PATH``.  An explicit path that does not exist raises — a typo'd
    ``--yosys`` should not silently degrade into a skip.
    """
    candidate = explicit or os.environ.get("MAE_YOSYS")
    if candidate:
        resolved = shutil.which(candidate)
        if resolved is None:
            raise FrontendError(
                f"yosys binary {candidate!r} not found or not executable"
            )
        return resolved
    return shutil.which("yosys")


def synthesis_commands(
    verilog_path: Union[str, Path],
    liberty_path: Union[str, Path],
    top: Optional[str] = None,
    blif_out: Optional[Union[str, Path]] = None,
) -> List[str]:
    """The command recipe, exposed so tests (and ``--dry-run``) can
    inspect it without a binary."""
    hierarchy = f"hierarchy -check -top {top}" if top else (
        "hierarchy -check -auto-top"
    )
    commands = [
        f"read_liberty -lib {liberty_path}",
        f"read_verilog {verilog_path}",
        hierarchy,
        "proc", "opt", "fsm", "opt", "memory", "opt",
        "techmap", "opt",
        f"dfflibmap -liberty {liberty_path}",
        f"abc -liberty {liberty_path}",
        "clean",
        f"stat -liberty {liberty_path}",
    ]
    if blif_out is not None:
        commands.append(f"write_blif {blif_out}")
    return commands


def run_yosys_flow(
    verilog_path: Union[str, Path],
    liberty_path: Union[str, Path],
    top: Optional[str] = None,
    blif_out: Optional[Union[str, Path]] = None,
    yosys_bin: Optional[str] = None,
    timeout: float = 300.0,
) -> SynthesisResult:
    """Synthesise ``verilog_path`` against ``liberty_path`` and return
    the reported chip area (and optionally the mapped BLIF).

    Raises :class:`FrontendError` when no binary is available — use
    :func:`find_yosys` first to skip gracefully instead.
    """
    binary = find_yosys(yosys_bin)
    if binary is None:
        raise FrontendError(
            "no yosys binary on PATH (set $MAE_YOSYS or pass --yosys); "
            "mae synth skips gracefully without one"
        )
    for path, what in ((verilog_path, "verilog"), (liberty_path, "liberty")):
        if not Path(path).exists():
            raise FrontendError(f"{what} file {path} does not exist")
    script = "; ".join(
        synthesis_commands(verilog_path, liberty_path, top, blif_out)
    )
    try:
        proc = subprocess.run(
            [binary, "-Q", "-p", script],
            capture_output=True, text=True, timeout=timeout,
        )
    except subprocess.TimeoutExpired as exc:
        raise FrontendError(
            f"yosys timed out after {timeout:g}s on {verilog_path}"
        ) from exc
    log = proc.stdout + proc.stderr
    if proc.returncode != 0:
        tail = "\n".join(log.splitlines()[-15:])
        raise FrontendError(
            f"yosys exited with status {proc.returncode}:\n{tail}"
        )
    return parse_yosys_stat(log, blif_out)


def parse_yosys_stat(
    log: str, blif_out: Optional[Union[str, Path]] = None
) -> SynthesisResult:
    """Extract the chip area and cell counts from a yosys log."""
    matches = CHIP_AREA_RE.findall(log)
    if not matches:
        raise FrontendError(
            "yosys output contains no 'Chip area for module' line — "
            "stat -liberty did not run or the design mapped to no cells"
        )
    top, area_text = matches[-1]
    counts = []
    for line in log.splitlines():
        match = CELL_COUNT_RE.match(line)
        if match:
            counts.append((match.group(2), int(match.group(1))))
    return SynthesisResult(
        top=top,
        chip_area_um2=float(area_text),
        cell_counts=tuple(counts),
        blif_path=str(blif_out) if blif_out is not None else None,
        log=log,
    )
