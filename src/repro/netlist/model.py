"""In-memory circuit representation.

A :class:`Module` is the unit the estimator works on: the paper estimates
area "of small to moderate-sized modules" which are later composed by a
chip floor planner.  A module owns:

* :class:`Port` objects — its external connections (the paper's
  "input and output ports", which drive aspect-ratio estimation),
* :class:`Device` objects — instances of library cells or transistors,
* :class:`Net` objects — the electrical nodes connecting device pins and
  ports.

The model is deliberately flat (no hierarchy): the paper's estimator runs
per-module, and hierarchical designs are handled by estimating each leaf
module and handing the results to the floor planner.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import NetlistError


class PortDirection(enum.Enum):
    """Direction of a module port."""

    INPUT = "input"
    OUTPUT = "output"
    INOUT = "inout"


@dataclass(frozen=True)
class Port:
    """An external connection point of a module.

    ``width_lambda`` is the length of layout edge the port's wire stub
    consumes; the aspect-ratio control criterion of Section 5 requires
    that all ports fit along one module edge.  When zero, the technology
    default port pitch is used at estimation time.
    """

    name: str
    direction: PortDirection = PortDirection.INPUT
    net: str = ""
    width_lambda: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise NetlistError("port name must be non-empty")
        if self.width_lambda < 0:
            raise NetlistError(
                f"port {self.name!r}: width_lambda must be >= 0, "
                f"got {self.width_lambda}"
            )


@dataclass(frozen=True)
class PinConnection:
    """One (device, pin) endpoint of a net."""

    device: str
    pin: str


@dataclass
class Device:
    """An instance of a library cell or a transistor.

    ``cell`` names a device type in the technology database (e.g.
    ``"NAND2"`` for standard cells, ``"nmos_enh"`` for transistors).
    ``pins`` maps pin names to net names.  ``width_lambda`` /
    ``height_lambda`` optionally override the library dimensions, which
    full-custom transistor sizing needs.
    """

    name: str
    cell: str
    pins: Dict[str, str] = field(default_factory=dict)
    width_lambda: Optional[float] = None
    height_lambda: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise NetlistError("device name must be non-empty")
        if not self.cell:
            raise NetlistError(f"device {self.name!r}: cell type must be non-empty")
        for dim_name, dim in (("width_lambda", self.width_lambda),
                              ("height_lambda", self.height_lambda)):
            if dim is not None and dim <= 0:
                raise NetlistError(
                    f"device {self.name!r}: {dim_name} must be positive, got {dim}"
                )

    @property
    def nets(self) -> Tuple[str, ...]:
        """Net names this device touches, in pin order."""
        return tuple(self.pins.values())


@dataclass
class Net:
    """An electrical node.

    ``connections`` are (device, pin) endpoints; ``ports`` are names of
    module ports on the net.  The paper's parameter *D* — "the number of
    components in a net" — is :attr:`component_count`: the number of
    distinct devices attached (ports do not occupy row positions).
    """

    name: str
    connections: List[PinConnection] = field(default_factory=list)
    ports: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise NetlistError("net name must be non-empty")

    @property
    def component_count(self) -> int:
        """The paper's D: number of distinct devices on the net."""
        return len({conn.device for conn in self.connections})

    @property
    def pin_count(self) -> int:
        """Total pin endpoints, counting multiple pins of one device."""
        return len(self.connections)

    @property
    def is_external(self) -> bool:
        """Whether the net reaches a module port."""
        return bool(self.ports)

    def devices(self) -> Tuple[str, ...]:
        """Distinct device names on the net, in first-seen order."""
        seen: Dict[str, None] = {}
        for conn in self.connections:
            seen.setdefault(conn.device, None)
        return tuple(seen)


class Module:
    """A flat circuit module: ports, devices, and nets.

    Mutation goes through :meth:`add_port`, :meth:`add_device`, and
    :meth:`connect`, which maintain the net-connection indices; direct
    dictionary manipulation is not supported.
    """

    def __init__(self, name: str):
        if not name:
            raise NetlistError("module name must be non-empty")
        self.name = name
        self._ports: Dict[str, Port] = {}
        self._devices: Dict[str, Device] = {}
        self._nets: Dict[str, Net] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_port(self, port: Port) -> Port:
        """Add an external port, creating/joining its net."""
        if port.name in self._ports:
            raise NetlistError(f"module {self.name!r}: duplicate port {port.name!r}")
        net_name = port.net or port.name
        port = Port(port.name, port.direction, net_name, port.width_lambda)
        self._ports[port.name] = port
        net = self._nets.setdefault(net_name, Net(net_name))
        net.ports.append(port.name)
        return port

    def add_device(self, device: Device) -> Device:
        """Add a device instance and register its pin connections."""
        if device.name in self._devices:
            raise NetlistError(
                f"module {self.name!r}: duplicate device {device.name!r}"
            )
        self._devices[device.name] = device
        for pin, net_name in device.pins.items():
            net = self._nets.setdefault(net_name, Net(net_name))
            net.connections.append(PinConnection(device.name, pin))
        return device

    def connect(self, device_name: str, pin: str, net_name: str) -> None:
        """Attach one more pin of an existing device to a net."""
        device = self._devices.get(device_name)
        if device is None:
            raise NetlistError(
                f"module {self.name!r}: unknown device {device_name!r}"
            )
        if pin in device.pins:
            raise NetlistError(
                f"module {self.name!r}: device {device_name!r} pin {pin!r} "
                "is already connected"
            )
        device.pins[pin] = net_name
        net = self._nets.setdefault(net_name, Net(net_name))
        net.connections.append(PinConnection(device_name, pin))

    # ------------------------------------------------------------------
    # mutation (ECO-style edits; see repro.incremental)
    # ------------------------------------------------------------------
    def remove_device(self, name: str) -> Device:
        """Remove a device and all of its pin connections.

        Nets left with neither connections nor ports are dropped, so a
        fresh scan of the mutated module never sees orphaned nets.
        Returns the removed device (its pins still name the nets it was
        attached to, which incremental bookkeeping needs).
        """
        device = self._devices.pop(name, None)
        if device is None:
            raise NetlistError(
                f"module {self.name!r}: unknown device {name!r}"
            )
        for net_name in set(device.pins.values()):
            net = self._nets[net_name]
            net.connections = [
                conn for conn in net.connections if conn.device != name
            ]
            self._drop_net_if_empty(net_name)
        return device

    def disconnect(self, device_name: str, pin: str) -> str:
        """Detach one pin of a device from its net; returns the net name."""
        device = self.device(device_name)
        net_name = device.pins.pop(pin, None)
        if net_name is None:
            raise NetlistError(
                f"module {self.name!r}: device {device_name!r} has no "
                f"pin {pin!r}"
            )
        net = self._nets[net_name]
        net.connections = [
            conn for conn in net.connections
            if not (conn.device == device_name and conn.pin == pin)
        ]
        self._drop_net_if_empty(net_name)
        return net_name

    def merge_nets(self, keep: str, absorb: str) -> Net:
        """Merge net ``absorb`` into net ``keep`` (short them together).

        Every pin and port of ``absorb`` is re-attached to ``keep`` and
        ``absorb`` disappears.  Returns the surviving net.
        """
        if keep == absorb:
            raise NetlistError(
                f"module {self.name!r}: cannot merge net {keep!r} with itself"
            )
        keep_net = self.net(keep)
        absorb_net = self.net(absorb)
        for conn in absorb_net.connections:
            self._devices[conn.device].pins[conn.pin] = keep
            keep_net.connections.append(conn)
        for port_name in absorb_net.ports:
            port = self._ports[port_name]
            self._ports[port_name] = Port(
                port.name, port.direction, keep, port.width_lambda
            )
            keep_net.ports.append(port_name)
        del self._nets[absorb]
        return keep_net

    def split_net(
        self,
        source: str,
        new_name: str,
        endpoints: Iterable[Tuple[str, str]],
    ) -> Net:
        """Move the given (device, pin) endpoints of ``source`` onto a
        new net ``new_name`` (cut the net in two).

        ``endpoints`` must be a non-empty subset of the source net's
        connections; ports stay on the source net.  Returns the new net.
        """
        if new_name in self._nets:
            raise NetlistError(
                f"module {self.name!r}: net {new_name!r} already exists"
            )
        net = self.net(source)
        moving = set(endpoints)
        if not moving:
            raise NetlistError(
                f"module {self.name!r}: split of net {source!r} moves "
                "no endpoints"
            )
        present = {(conn.device, conn.pin) for conn in net.connections}
        missing = moving - present
        if missing:
            raise NetlistError(
                f"module {self.name!r}: net {source!r} has no endpoint(s) "
                f"{sorted(missing)}"
            )
        new_net = Net(new_name)
        remaining = []
        for conn in net.connections:
            if (conn.device, conn.pin) in moving:
                new_net.connections.append(conn)
                self._devices[conn.device].pins[conn.pin] = new_name
            else:
                remaining.append(conn)
        net.connections = remaining
        self._nets[new_name] = new_net
        self._drop_net_if_empty(source)
        return new_net

    def copy(self) -> "Module":
        """An independent structural clone (same ports, devices, nets).

        Connection order within a net follows device insertion order in
        the clone, which is invisible to the scan statistics (net sizes
        count *distinct* devices).
        """
        clone = Module(self.name)
        for port in self._ports.values():
            clone.add_port(port)
        for device in self._devices.values():
            clone.add_device(Device(
                device.name, device.cell, dict(device.pins),
                device.width_lambda, device.height_lambda,
            ))
        return clone

    def _drop_net_if_empty(self, net_name: str) -> None:
        net = self._nets.get(net_name)
        if net is not None and not net.connections and not net.ports:
            del self._nets[net_name]

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def ports(self) -> Tuple[Port, ...]:
        return tuple(self._ports.values())

    @property
    def devices(self) -> Tuple[Device, ...]:
        return tuple(self._devices.values())

    @property
    def nets(self) -> Tuple[Net, ...]:
        return tuple(self._nets.values())

    @property
    def device_count(self) -> int:
        """The paper's N."""
        return len(self._devices)

    @property
    def net_count(self) -> int:
        """The paper's H."""
        return len(self._nets)

    @property
    def port_count(self) -> int:
        return len(self._ports)

    def port(self, name: str) -> Port:
        try:
            return self._ports[name]
        except KeyError:
            raise NetlistError(
                f"module {self.name!r}: unknown port {name!r}"
            ) from None

    def device(self, name: str) -> Device:
        try:
            return self._devices[name]
        except KeyError:
            raise NetlistError(
                f"module {self.name!r}: unknown device {name!r}"
            ) from None

    def net(self, name: str) -> Net:
        try:
            return self._nets[name]
        except KeyError:
            raise NetlistError(
                f"module {self.name!r}: unknown net {name!r}"
            ) from None

    def has_net(self, name: str) -> bool:
        return name in self._nets

    def has_device(self, name: str) -> bool:
        return name in self._devices

    def iter_signal_nets(
        self, power_names: Iterable[str] = ("vdd", "vss", "gnd", "vcc")
    ) -> Iterator[Net]:
        """Nets excluding power/ground rails.

        Power rails run inside standard-cell rows and do not consume
        routing tracks, so the estimator skips them.  Matching is
        case-insensitive on the whole net name.
        """
        skip = {p.lower() for p in power_names}
        for net in self._nets.values():
            if net.name.lower() not in skip:
                yield net

    def cell_usage(self) -> Dict[str, int]:
        """Map of cell type -> instance count (the paper's X_i by type)."""
        usage: Dict[str, int] = {}
        for device in self._devices.values():
            usage[device.cell] = usage.get(device.cell, 0) + 1
        return usage

    def __repr__(self) -> str:
        return (
            f"Module({self.name!r}, devices={self.device_count}, "
            f"nets={self.net_count}, ports={self.port_count})"
        )
