"""Structural consistency checks for modules.

The estimator's probability model assumes a sane netlist: every net has
at least one endpoint, device pins reference nets that exist, and port
nets are real.  :func:`validate_module` raises
:class:`~repro.errors.NetlistError` on the first violation;
:func:`module_warnings` collects non-fatal oddities (dangling nets,
single-pin nets) that usually indicate generator bugs.
"""

from __future__ import annotations

from typing import List

from repro.errors import NetlistError
from repro.netlist.model import Module


def validate_module(module: Module) -> Module:
    """Raise :class:`NetlistError` if the module is structurally broken.

    Returns the module so the call composes with builders.
    """
    net_names = {net.name for net in module.nets}

    for device in module.devices:
        if not device.pins:
            raise NetlistError(
                f"module {module.name!r}: device {device.name!r} has no pins"
            )
        for pin, net in device.pins.items():
            if net not in net_names:
                raise NetlistError(
                    f"module {module.name!r}: device {device.name!r} pin "
                    f"{pin!r} references unknown net {net!r}"
                )

    for port in module.ports:
        if port.net not in net_names:
            raise NetlistError(
                f"module {module.name!r}: port {port.name!r} references "
                f"unknown net {port.net!r}"
            )

    device_names = {device.name for device in module.devices}
    for net in module.nets:
        if not net.connections and not net.ports:
            raise NetlistError(
                f"module {module.name!r}: net {net.name!r} has no endpoints"
            )
        for conn in net.connections:
            if conn.device not in device_names:
                raise NetlistError(
                    f"module {module.name!r}: net {net.name!r} references "
                    f"unknown device {conn.device!r}"
                )
            pins = module.device(conn.device).pins
            if pins.get(conn.pin) != net.name:
                raise NetlistError(
                    f"module {module.name!r}: net {net.name!r} connection "
                    f"({conn.device}, {conn.pin}) disagrees with the "
                    "device's pin map"
                )
    return module


def module_warnings(module: Module) -> List[str]:
    """Non-fatal structural oddities, as human-readable strings."""
    warnings: List[str] = []
    for net in module.nets:
        endpoints = net.pin_count + len(net.ports)
        if endpoints == 1:
            warnings.append(
                f"net {net.name!r} has a single endpoint (dangling)"
            )
    for device in module.devices:
        nets_touched = set(device.pins.values())
        if len(nets_touched) == 1 and len(device.pins) > 1:
            warnings.append(
                f"device {device.name!r} has all pins shorted to "
                f"net {next(iter(nets_touched))!r}"
            )
    if module.device_count == 0:
        warnings.append("module has no devices")
    if module.port_count == 0:
        warnings.append("module has no external ports")
    return warnings
