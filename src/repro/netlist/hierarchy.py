"""Hierarchy linking and flattening.

"Chip floor planning ... the chip is partitioned into large modules
which are laid out independently" — real schematics arrive as a
*library* of modules instantiating one another, while the estimator
(and the paper) work on flat leaf modules.  This module bridges the
two: :func:`flatten` elaborates a hierarchical design into one flat
module per the usual rules:

* instances whose cell name matches another module in the library are
  expanded recursively; all other cells are leaves (library gates,
  transistors);
* expanded device and net names are prefixed with the instance path
  (``u1/u2/n3``);
* child ports bind to parent nets through the instance pins — named
  connections bind by port name, positional connections (``p0`` ...)
  by port order;
* power/ground nets stay global (never prefixed), matching how supply
  rails are wired through a chip.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import NetlistError
from repro.netlist.model import Device, Module, Port
from repro.netlist.stats import DEFAULT_POWER_NETS
from repro.netlist.validate import validate_module


def build_library(modules: Iterable[Module]) -> Dict[str, Module]:
    """Index modules by name, rejecting duplicates."""
    library: Dict[str, Module] = {}
    for module in modules:
        if module.name in library:
            raise NetlistError(f"duplicate module {module.name!r} in library")
        library[module.name] = module
    return library


def hierarchy_depth(
    library: Mapping[str, Module], top: str
) -> int:
    """Longest instantiation chain under ``top`` (1 = flat)."""
    return _depth(library, top, ())


def inter_module_nets(
    library: Mapping[str, Module],
    top: str,
    power_nets: Sequence[str] = DEFAULT_POWER_NETS,
) -> List[Tuple[str, Tuple[str, ...]]]:
    """The chip's *global interconnections*: nets of the top module
    connecting two or more submodule instances.

    This is the second half of the Fig. 1 database ("the global module
    descriptions and global interconnections for the whole chip") —
    the floorplanner uses it to keep connected modules adjacent.
    Returns (net name, instance names) pairs for nets touching >= 2
    instances of library submodules; leaf devices count as their own
    instance.
    """
    try:
        top_module = library[top]
    except KeyError:
        raise NetlistError(f"top module {top!r} not found in library") from None
    skip = {p.lower() for p in power_nets}
    result: List[Tuple[str, Tuple[str, ...]]] = []
    for net in top_module.nets:
        if net.name.lower() in skip:
            continue
        instances = net.devices()
        if len(instances) >= 2:
            result.append((net.name, instances))
    return result


def flatten(
    library: Mapping[str, Module],
    top: str,
    separator: str = "/",
    power_nets: Sequence[str] = DEFAULT_POWER_NETS,
) -> Module:
    """Elaborate ``top`` into a flat module."""
    try:
        top_module = library[top]
    except KeyError:
        raise NetlistError(f"top module {top!r} not found in library") from None

    result = Module(top)
    for port in top_module.ports:
        result.add_port(Port(port.name, port.direction, port.net,
                             port.width_lambda))
    net_map = {net.name: net.name for net in top_module.nets}
    _expand(library, top_module, result, prefix="", net_map=net_map,
            stack=(top,), separator=separator,
            power={p.lower() for p in power_nets})
    return validate_module(result)


def flatten_source(
    modules: Sequence[Module],
    top: Optional[str] = None,
    separator: str = "/",
) -> Module:
    """Convenience: library list in, flat module out.

    Without an explicit ``top``, the unique module that no other module
    instantiates is used.
    """
    library = build_library(modules)
    if top is None:
        top = _infer_top(library)
    return flatten(library, top, separator)


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _expand(
    library: Mapping[str, Module],
    module: Module,
    result: Module,
    prefix: str,
    net_map: Dict[str, str],
    stack: Tuple[str, ...],
    separator: str,
    power: set,
) -> None:
    for device in module.devices:
        child = library.get(device.cell)
        instance_name = prefix + device.name
        if child is None:
            # Leaf device: copy with translated nets.
            pins = {
                pin: _resolve(net, net_map, prefix, separator, power,
                              result)
                for pin, net in device.pins.items()
            }
            result.add_device(
                Device(instance_name, device.cell, pins,
                       device.width_lambda, device.height_lambda)
            )
            continue

        if device.cell in stack:
            chain = " -> ".join(stack + (device.cell,))
            raise NetlistError(
                f"recursive instantiation: {chain}"
            )

        child_map = _bind_ports(device, child, net_map, prefix, separator,
                                power, result)
        _expand(
            library,
            child,
            result,
            prefix=instance_name + separator,
            net_map=child_map,
            stack=stack + (device.cell,),
            separator=separator,
            power=power,
        )


def _bind_ports(
    instance: Device,
    child: Module,
    parent_map: Dict[str, str],
    prefix: str,
    separator: str,
    power: set,
    result: Module,
) -> Dict[str, str]:
    """Child-net -> flat-net mapping induced by the instance pins."""
    port_names = [port.name for port in child.ports]
    bindings: Dict[str, str] = {}
    for pin, parent_net in instance.pins.items():
        if pin in port_names:
            port_name = pin
        elif pin.startswith("p") and pin[1:].isdigit():
            index = int(pin[1:])
            if index >= len(port_names):
                raise NetlistError(
                    f"instance {prefix}{instance.name!r}: positional pin "
                    f"{pin!r} exceeds the {len(port_names)} ports of "
                    f"{child.name!r}"
                )
            port_name = port_names[index]
        else:
            raise NetlistError(
                f"instance {prefix}{instance.name!r}: pin {pin!r} does not "
                f"match a port of {child.name!r} "
                f"(ports: {', '.join(port_names)})"
            )
        if port_name in bindings:
            raise NetlistError(
                f"instance {prefix}{instance.name!r}: port {port_name!r} "
                "bound twice"
            )
        bindings[port_name] = _resolve(parent_net, parent_map, prefix,
                                       separator, power, result)

    child_map: Dict[str, str] = {}
    for port in child.ports:
        if port.name not in bindings:
            raise NetlistError(
                f"instance {prefix}{instance.name!r}: port {port.name!r} "
                f"of {child.name!r} is unconnected"
            )
        existing = child_map.get(port.net)
        if existing is not None and existing != bindings[port.name]:
            raise NetlistError(
                f"instance {prefix}{instance.name!r}: ports sharing child "
                f"net {port.net!r} bind to different parent nets "
                f"({existing!r} vs {bindings[port.name]!r})"
            )
        child_map[port.net] = bindings[port.name]
    return child_map


def _resolve(
    net: str,
    net_map: Dict[str, str],
    prefix: str,
    separator: str,
    power: set,
    result: Module,
) -> str:
    if net.lower() in power:
        return net
    if net not in net_map:
        net_map[net] = prefix + net if prefix else net
    return net_map[net]


def _infer_top(library: Mapping[str, Module]) -> str:
    instantiated = set()
    for module in library.values():
        for device in module.devices:
            if device.cell in library:
                instantiated.add(device.cell)
    tops = [name for name in library if name not in instantiated]
    if len(tops) != 1:
        raise NetlistError(
            f"cannot infer the top module: candidates {sorted(tops)} "
            "(pass top= explicitly)"
        )
    return tops[0]


def _depth(
    library: Mapping[str, Module], name: str, stack: Tuple[str, ...]
) -> int:
    if name in stack:
        chain = " -> ".join(stack + (name,))
        raise NetlistError(f"recursive instantiation: {chain}")
    module = library[name]
    deepest = 0
    for device in module.devices:
        if device.cell in library:
            deepest = max(
                deepest, _depth(library, device.cell, stack + (name,))
            )
    return deepest + 1
