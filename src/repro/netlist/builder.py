"""Fluent programmatic construction of modules.

Workload generators and tests build circuits in code; the builder keeps
that code readable and guarantees the result passes validation::

    module = (
        NetlistBuilder("half_adder")
        .inputs("a", "b")
        .outputs("sum", "carry")
        .gate("XOR2", "x1", a="a", b="b", y="sum")
        .gate("AND2", "a1", a="a", b="b", y="carry")
        .build()
    )
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.errors import NetlistError
from repro.netlist.model import Device, Module, Port, PortDirection
from repro.netlist.validate import validate_module


class NetlistBuilder:
    """Incrementally assemble a :class:`~repro.netlist.model.Module`."""

    def __init__(self, name: str):
        self._module = Module(name)
        self._auto_index = itertools.count()
        self._built = False

    # ------------------------------------------------------------------
    # ports
    # ------------------------------------------------------------------
    def port(
        self,
        name: str,
        direction: PortDirection = PortDirection.INPUT,
        net: str = "",
        width_lambda: float = 0.0,
    ) -> "NetlistBuilder":
        """Add one port; its net defaults to the port name."""
        self._check_open()
        self._module.add_port(Port(name, direction, net, width_lambda))
        return self

    def inputs(self, *names: str) -> "NetlistBuilder":
        for name in names:
            self.port(name, PortDirection.INPUT)
        return self

    def outputs(self, *names: str) -> "NetlistBuilder":
        for name in names:
            self.port(name, PortDirection.OUTPUT)
        return self

    def inouts(self, *names: str) -> "NetlistBuilder":
        for name in names:
            self.port(name, PortDirection.INOUT)
        return self

    # ------------------------------------------------------------------
    # devices
    # ------------------------------------------------------------------
    def gate(self, cell: str, name: Optional[str] = None, **pins: str) -> "NetlistBuilder":
        """Add a library-cell instance; pins are ``pin=net`` keywords."""
        self._check_open()
        if not pins:
            raise NetlistError(f"gate {cell!r}: at least one pin connection required")
        device_name = name or self._fresh_name(cell)
        self._module.add_device(Device(device_name, cell, dict(pins)))
        return self

    def transistor(
        self,
        cell: str,
        name: Optional[str] = None,
        gate: str = "",
        drain: str = "",
        source: str = "",
        width_lambda: Optional[float] = None,
        height_lambda: Optional[float] = None,
    ) -> "NetlistBuilder":
        """Add a transistor (full-custom device) with g/d/s terminals."""
        self._check_open()
        pins: Dict[str, str] = {}
        if gate:
            pins["g"] = gate
        if drain:
            pins["d"] = drain
        if source:
            pins["s"] = source
        if not pins:
            raise NetlistError(
                f"transistor {cell!r}: at least one terminal must be connected"
            )
        device_name = name or self._fresh_name(cell)
        self._module.add_device(
            Device(device_name, cell, pins, width_lambda, height_lambda)
        )
        return self

    def device(self, device: Device) -> "NetlistBuilder":
        """Add a pre-constructed device."""
        self._check_open()
        self._module.add_device(device)
        return self

    # ------------------------------------------------------------------
    # finish
    # ------------------------------------------------------------------
    def build(self, validate: bool = True) -> Module:
        """Finish construction; the builder cannot be reused afterwards."""
        self._check_open()
        self._built = True
        if validate:
            validate_module(self._module)
        return self._module

    def _fresh_name(self, cell: str) -> str:
        base = cell.lower()
        while True:
            candidate = f"{base}_{next(self._auto_index)}"
            if not self._module.has_device(candidate):
                return candidate

    def _check_open(self) -> None:
        if self._built:
            raise NetlistError("builder already finished; create a new one")
