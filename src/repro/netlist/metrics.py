"""Structural netlist metrics: fanout profile, pin statistics, and a
Rent-exponent estimate.

The estimator's accuracy depends on a module's interconnection
structure ("the size of the routing area strongly depends on the
interconnection strength among devices", Section 4.1); these metrics
quantify that structure so workload generators can be validated against
real-circuit expectations and users can judge whether a module is in
the estimator's comfort zone.

The Rent exponent is estimated by recursive KL bisection: at each
level, count the external nets of each block versus the block's device
count and fit log(pins) against log(devices).  Typical logic has
p in 0.5 .. 0.75; p near 1 means unstructured (random) connectivity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.errors import NetlistError
from repro.netlist.model import Module
from repro.netlist.partition import bipartition
from repro.netlist.stats import DEFAULT_POWER_NETS


@dataclass(frozen=True)
class FanoutProfile:
    """Distribution of net sizes (component counts)."""

    histogram: Tuple[Tuple[int, int], ...]  # (size, count)
    mean: float
    maximum: int

    @property
    def two_point_fraction(self) -> float:
        total = sum(count for _, count in self.histogram)
        if total == 0:
            return 0.0
        two = sum(count for size, count in self.histogram if size == 2)
        return two / total


def fanout_profile(
    module: Module,
    power_nets: Sequence[str] = DEFAULT_POWER_NETS,
) -> FanoutProfile:
    """Net-size distribution over routable (>= 2 component) nets."""
    counts: Dict[int, int] = {}
    for net in module.iter_signal_nets(power_nets):
        size = net.component_count
        if size >= 2:
            counts[size] = counts.get(size, 0) + 1
    if not counts:
        return FanoutProfile(histogram=(), mean=0.0, maximum=0)
    total_nets = sum(counts.values())
    mean = sum(size * count for size, count in counts.items()) / total_nets
    return FanoutProfile(
        histogram=tuple(sorted(counts.items())),
        mean=mean,
        maximum=max(counts),
    )


def average_pins_per_device(module: Module) -> float:
    """Mean pin count over devices (0 for an empty module)."""
    if module.device_count == 0:
        return 0.0
    total = sum(len(device.pins) for device in module.devices)
    return total / module.device_count


def external_net_count(
    module: Module,
    devices: Set[str],
    power_nets: Sequence[str] = DEFAULT_POWER_NETS,
) -> int:
    """Nets connecting the device subset to anything outside it
    (other devices or module ports) — the block's "pins" for Rent."""
    count = 0
    for net in module.iter_signal_nets(power_nets):
        members = set(net.devices())
        inside = members & devices
        if not inside:
            continue
        outside = (members - devices) or net.ports
        if outside:
            count += 1
    return count


@dataclass(frozen=True)
class RentEstimate:
    """Fit of pins ~ k * devices^p over recursive-bisection blocks."""

    exponent: float      # p
    coefficient: float   # k
    samples: Tuple[Tuple[int, int], ...]  # (devices, pins) pairs

    @property
    def sample_count(self) -> int:
        return len(self.samples)


def rent_exponent(
    module: Module,
    seed: int = 0,
    min_block: int = 4,
    power_nets: Sequence[str] = DEFAULT_POWER_NETS,
) -> RentEstimate:
    """Estimate the Rent exponent by recursive KL bisection.

    Blocks smaller than ``min_block`` devices are not split further.
    Requires at least two (devices, pins) samples at distinct sizes.
    """
    if module.device_count < 2 * min_block:
        raise NetlistError(
            f"module {module.name!r}: need >= {2 * min_block} devices "
            "for a Rent estimate"
        )
    samples: List[Tuple[int, int]] = []

    def visit(devices: Set[str], depth: int) -> None:
        pins = external_net_count(module, devices, power_nets)
        if pins > 0:
            samples.append((len(devices), pins))
        if len(devices) < 2 * min_block:
            return
        sub = _submodule_split(module, devices, seed + depth, power_nets)
        if sub is None:
            return
        left, right = sub
        visit(left, depth + 1)
        visit(right, depth + 1)

    visit({d.name for d in module.devices}, 0)

    sizes = {devices for devices, _ in samples}
    if len(sizes) < 2:
        raise NetlistError(
            f"module {module.name!r}: not enough block-size diversity "
            "for a Rent fit"
        )
    exponent, log_k = _fit_loglog(samples)
    return RentEstimate(
        exponent=exponent,
        coefficient=math.exp(log_k),
        samples=tuple(samples),
    )


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _submodule_split(module, devices: Set[str], seed: int, power_nets):
    """KL-split a device subset by partitioning the induced structure.

    KL runs on the whole module but we only need the subset: build a
    temporary module? Cheaper: run bipartition on the full module when
    the subset is everything, else split the subset greedily using the
    same KL on an induced module.
    """
    from repro.netlist.model import Device, Module as _Module

    induced = _Module(f"_block_{seed}")
    for name in sorted(devices):
        device = module.device(name)
        induced.add_device(
            Device(device.name, device.cell, dict(device.pins),
                   device.width_lambda, device.height_lambda)
        )
    if induced.device_count < 2:
        return None
    result = bipartition(induced, seed=seed, power_nets=power_nets)
    if not result.left or not result.right:
        return None
    return set(result.left), set(result.right)


def _fit_loglog(samples: Sequence[Tuple[int, int]]) -> Tuple[float, float]:
    """Least-squares fit of log(pins) = p*log(devices) + log(k)."""
    xs = [math.log(devices) for devices, _ in samples]
    ys = [math.log(pins) for _, pins in samples]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    var_x = sum((x - mean_x) ** 2 for x in xs)
    if var_x == 0:
        raise NetlistError("cannot fit Rent exponent: single block size")
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = cov / var_x
    intercept = mean_y - slope * mean_x
    return slope, intercept
