"""The schematic scan: extract the estimator's inputs from a module.

Section 4 of the paper: "The inputs to the estimation task are N (the
number of devices), W_i (individual device widths), and H (the number of
nets).  A scan of the circuit schematic ... will produce these values."

:func:`scan_module` performs that scan.  Geometry (device widths and
heights) lives in the technology database, so the scan accepts resolver
callables; this keeps :mod:`repro.netlist` free of a dependency on
:mod:`repro.technology` (the estimator facade wires the two together).

The resulting :class:`ModuleStatistics` carries every symbol used by the
paper's equations:

* ``device_count`` — N
* ``net_count`` — H (signal nets only; power rails excluded)
* ``width_histogram`` — (W_i, X_i) pairs: distinct widths and their
  instance counts
* ``average_width`` — W_avg of Eq. 1
* ``net_size_histogram`` — (D, y_D) pairs: net component counts and the
  number of nets of each size
* ``total_device_area`` / ``average_device_height`` — the active-cell
  area terms of Eqs. 12/13.

Canonical aggregation
---------------------

Every float aggregate is computed by :func:`weighted_total` — a sum
over the **sorted** value histogram, never over devices in netlist
order.  Sorting makes the summation order a function of the histogram
*content* alone, so any two code paths that agree on the histograms
produce bit-identical floats.  That property is what lets the
incremental engine (:mod:`repro.incremental`) maintain the histograms
under netlist edits in O(affected nets) and still guarantee results
field-for-field equal to a from-scratch rescan:
:func:`build_statistics` is the single constructor both paths call.

Statistics are immutable snapshots; the optional ``stats_version``
token stamps which revision of a mutating netlist a snapshot was taken
at.  It is excluded from equality/hashing (two identical-content
snapshots are interchangeable) but lets caches fail loudly on stale
reuse — see :func:`repro.perf.plan.get_plan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Mapping, Optional, Tuple

from repro.errors import EstimationError
from repro.netlist.model import Device, Module

#: Resolves one device to a physical dimension in lambda.
DimensionResolver = Callable[[Device], float]

#: Net names treated as power/ground and excluded from routing statistics.
DEFAULT_POWER_NETS: Tuple[str, ...] = ("vdd", "vss", "gnd", "vcc", "vbb")


@dataclass(frozen=True)
class ModuleStatistics:
    """Aggregate quantities the area-estimation equations consume."""

    module_name: str
    device_count: int
    net_count: int
    port_count: int
    width_histogram: Tuple[Tuple[float, int], ...]
    net_size_histogram: Tuple[Tuple[int, int], ...]
    average_width: float
    average_height: float
    total_device_area: float
    total_port_width: float
    max_net_size: int
    #: Netlist revision this snapshot was taken at (None: not tracked).
    #: Excluded from comparison/hashing — snapshots with equal content
    #: are interchangeable regardless of when they were taken.
    stats_version: Optional[int] = field(default=None, compare=False)

    @property
    def distinct_width_count(self) -> int:
        """The paper's k: number of distinct device widths."""
        return len(self.width_histogram)

    @property
    def multi_component_nets(self) -> Tuple[Tuple[int, int], ...]:
        """Net-size histogram restricted to nets with >= 2 components.

        Single-component nets need no inter-row routing and contribute
        neither tracks nor feed-throughs.
        """
        return tuple((d, y) for d, y in self.net_size_histogram if d >= 2)

    @property
    def routed_net_count(self) -> int:
        """Number of nets that can demand routing resources."""
        return sum(y for _, y in self.multi_component_nets)

    def describe(self) -> str:
        """One-paragraph human-readable summary for reports."""
        sizes = ", ".join(f"{y} nets of D={d}" for d, y in self.net_size_histogram)
        return (
            f"module {self.module_name}: N={self.device_count} devices, "
            f"H={self.net_count} nets, {self.port_count} ports; "
            f"W_avg={self.average_width:.2f} lambda, "
            f"device area={self.total_device_area:.0f} lambda^2; "
            f"net sizes: {sizes or 'none'}"
        )


def weighted_total(histogram: Mapping[float, int]) -> float:
    """The canonical order-independent weighted sum of a histogram.

    ``sum(value * count)`` over entries **sorted by value**.  Every
    float aggregate in :class:`ModuleStatistics` is computed this way,
    so the result depends only on the histogram content — never on the
    order devices appear in the netlist.  The incremental engine relies
    on this: maintaining the histogram and re-running this sum
    reproduces a from-scratch scan bit for bit.
    """
    return sum(value * count for value, count in sorted(histogram.items()))


def resolve_dimensions(
    device: Device,
    device_width: Optional[DimensionResolver] = None,
    device_height: Optional[DimensionResolver] = None,
) -> Tuple[float, float]:
    """(width, height) of one device in lambda, honouring per-device
    overrides first, then the resolvers (exactly the scan's rules)."""
    width = _resolve(device, device.width_lambda, device_width, "width")
    height = _resolve(device, device.height_lambda, device_height, "height")
    return width, height


def effective_port_width(port, default: float) -> float:
    """A port's edge length: its own width when declared, else the
    technology default pitch."""
    return port.width_lambda if port.width_lambda > 0 else default


def build_statistics(
    module_name: str,
    device_count: int,
    port_count: int,
    width_histogram: Mapping[float, int],
    height_histogram: Mapping[float, int],
    area_histogram: Mapping[float, int],
    net_size_histogram: Mapping[int, int],
    port_width_histogram: Mapping[float, int],
    stats_version: Optional[int] = None,
) -> ModuleStatistics:
    """Assemble a :class:`ModuleStatistics` from value histograms.

    This is the single constructor behind both :func:`scan_module` and
    the incremental engine; every derived float goes through
    :func:`weighted_total`, so two callers that agree on the histograms
    get bit-identical statistics.
    """
    if device_count:
        average_width = weighted_total(width_histogram) / device_count
        average_height = weighted_total(height_histogram) / device_count
    else:
        average_width = 0.0
        average_height = 0.0
    sizes = {size: count for size, count in net_size_histogram.items() if count}
    return ModuleStatistics(
        module_name=module_name,
        device_count=device_count,
        net_count=sum(sizes.values()),
        port_count=port_count,
        width_histogram=tuple(sorted(
            (w, x) for w, x in width_histogram.items() if x
        )),
        net_size_histogram=tuple(sorted(sizes.items())),
        average_width=average_width,
        average_height=average_height,
        total_device_area=weighted_total(area_histogram),
        total_port_width=weighted_total(port_width_histogram),
        max_net_size=max(sizes) if sizes else 0,
        stats_version=stats_version,
    )


def scan_module(
    module: Module,
    device_width: Optional[DimensionResolver] = None,
    device_height: Optional[DimensionResolver] = None,
    port_width: float = 8.0,
    power_nets: Iterable[str] = DEFAULT_POWER_NETS,
    stats_version: Optional[int] = None,
) -> ModuleStatistics:
    """Scan a module and compute the estimation inputs.

    ``device_width`` / ``device_height`` resolve library geometry; when
    omitted, every device must carry explicit ``width_lambda`` /
    ``height_lambda`` overrides.  ``port_width`` (lambda) is used for
    ports that do not declare their own width.
    """
    widths: Dict[float, int] = {}
    heights: Dict[float, int] = {}
    areas: Dict[float, int] = {}
    for device in module.devices:
        width, height = resolve_dimensions(device, device_width, device_height)
        widths[width] = widths.get(width, 0) + 1
        heights[height] = heights.get(height, 0) + 1
        area = width * height
        areas[area] = areas.get(area, 0) + 1

    net_sizes: Dict[int, int] = {}
    for net in module.iter_signal_nets(power_nets):
        size = net.component_count
        if size == 0:
            # Port-only net: no devices to place, nothing to route.
            continue
        net_sizes[size] = net_sizes.get(size, 0) + 1

    port_widths: Dict[float, int] = {}
    for port in module.ports:
        width = effective_port_width(port, port_width)
        port_widths[width] = port_widths.get(width, 0) + 1

    return build_statistics(
        module_name=module.name,
        device_count=module.device_count,
        port_count=module.port_count,
        width_histogram=widths,
        height_histogram=heights,
        area_histogram=areas,
        net_size_histogram=net_sizes,
        port_width_histogram=port_widths,
        stats_version=stats_version,
    )


def net_size_counts(module: Module,
                    power_nets: Iterable[str] = DEFAULT_POWER_NETS) -> Mapping[int, int]:
    """Convenience: the (D -> y_D) mapping alone."""
    stats = scan_module(
        module,
        device_width=lambda d: d.width_lambda or 1.0,
        device_height=lambda d: d.height_lambda or 1.0,
        power_nets=power_nets,
    )
    return dict(stats.net_size_histogram)


def _resolve(
    device: Device,
    override: Optional[float],
    resolver: Optional[DimensionResolver],
    kind: str,
) -> float:
    if override is not None:
        return override
    if resolver is not None:
        value = resolver(device)
        if value <= 0:
            raise EstimationError(
                f"device {device.name!r} ({device.cell}): resolver returned "
                f"non-positive {kind} {value}"
            )
        return value
    raise EstimationError(
        f"device {device.name!r} ({device.cell}) has no {kind}: supply a "
        f"device_{kind} resolver or per-device {kind}_lambda"
    )
