"""The schematic scan: extract the estimator's inputs from a module.

Section 4 of the paper: "The inputs to the estimation task are N (the
number of devices), W_i (individual device widths), and H (the number of
nets).  A scan of the circuit schematic ... will produce these values."

:func:`scan_module` performs that scan.  Geometry (device widths and
heights) lives in the technology database, so the scan accepts resolver
callables; this keeps :mod:`repro.netlist` free of a dependency on
:mod:`repro.technology` (the estimator facade wires the two together).

The resulting :class:`ModuleStatistics` carries every symbol used by the
paper's equations:

* ``device_count`` — N
* ``net_count`` — H (signal nets only; power rails excluded)
* ``width_histogram`` — (W_i, X_i) pairs: distinct widths and their
  instance counts
* ``average_width`` — W_avg of Eq. 1
* ``net_size_histogram`` — (D, y_D) pairs: net component counts and the
  number of nets of each size
* ``total_device_area`` / ``average_device_height`` — the active-cell
  area terms of Eqs. 12/13.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Mapping, Optional, Tuple

from repro.errors import EstimationError
from repro.netlist.model import Device, Module

#: Resolves one device to a physical dimension in lambda.
DimensionResolver = Callable[[Device], float]

#: Net names treated as power/ground and excluded from routing statistics.
DEFAULT_POWER_NETS: Tuple[str, ...] = ("vdd", "vss", "gnd", "vcc", "vbb")


@dataclass(frozen=True)
class ModuleStatistics:
    """Aggregate quantities the area-estimation equations consume."""

    module_name: str
    device_count: int
    net_count: int
    port_count: int
    width_histogram: Tuple[Tuple[float, int], ...]
    net_size_histogram: Tuple[Tuple[int, int], ...]
    average_width: float
    average_height: float
    total_device_area: float
    total_port_width: float
    max_net_size: int

    @property
    def distinct_width_count(self) -> int:
        """The paper's k: number of distinct device widths."""
        return len(self.width_histogram)

    @property
    def multi_component_nets(self) -> Tuple[Tuple[int, int], ...]:
        """Net-size histogram restricted to nets with >= 2 components.

        Single-component nets need no inter-row routing and contribute
        neither tracks nor feed-throughs.
        """
        return tuple((d, y) for d, y in self.net_size_histogram if d >= 2)

    @property
    def routed_net_count(self) -> int:
        """Number of nets that can demand routing resources."""
        return sum(y for _, y in self.multi_component_nets)

    def describe(self) -> str:
        """One-paragraph human-readable summary for reports."""
        sizes = ", ".join(f"{y} nets of D={d}" for d, y in self.net_size_histogram)
        return (
            f"module {self.module_name}: N={self.device_count} devices, "
            f"H={self.net_count} nets, {self.port_count} ports; "
            f"W_avg={self.average_width:.2f} lambda, "
            f"device area={self.total_device_area:.0f} lambda^2; "
            f"net sizes: {sizes or 'none'}"
        )


def scan_module(
    module: Module,
    device_width: Optional[DimensionResolver] = None,
    device_height: Optional[DimensionResolver] = None,
    port_width: float = 8.0,
    power_nets: Iterable[str] = DEFAULT_POWER_NETS,
) -> ModuleStatistics:
    """Scan a module and compute the estimation inputs.

    ``device_width`` / ``device_height`` resolve library geometry; when
    omitted, every device must carry explicit ``width_lambda`` /
    ``height_lambda`` overrides.  ``port_width`` (lambda) is used for
    ports that do not declare their own width.
    """
    widths: Dict[float, int] = {}
    total_area = 0.0
    total_height = 0.0
    for device in module.devices:
        width = _resolve(device, device.width_lambda, device_width, "width")
        height = _resolve(device, device.height_lambda, device_height, "height")
        widths[width] = widths.get(width, 0) + 1
        total_area += width * height
        total_height += height

    n_devices = module.device_count
    if n_devices:
        average_width = sum(w * x for w, x in widths.items()) / n_devices
        average_height = total_height / n_devices
    else:
        average_width = 0.0
        average_height = 0.0

    net_sizes: Dict[int, int] = {}
    signal_net_count = 0
    max_net_size = 0
    for net in module.iter_signal_nets(power_nets):
        size = net.component_count
        if size == 0:
            # Port-only net: no devices to place, nothing to route.
            continue
        signal_net_count += 1
        net_sizes[size] = net_sizes.get(size, 0) + 1
        max_net_size = max(max_net_size, size)

    total_port_width = sum(
        port.width_lambda if port.width_lambda > 0 else port_width
        for port in module.ports
    )

    return ModuleStatistics(
        module_name=module.name,
        device_count=n_devices,
        net_count=signal_net_count,
        port_count=module.port_count,
        width_histogram=tuple(sorted(widths.items())),
        net_size_histogram=tuple(sorted(net_sizes.items())),
        average_width=average_width,
        average_height=average_height,
        total_device_area=total_area,
        total_port_width=total_port_width,
        max_net_size=max_net_size,
    )


def net_size_counts(module: Module,
                    power_nets: Iterable[str] = DEFAULT_POWER_NETS) -> Mapping[int, int]:
    """Convenience: the (D -> y_D) mapping alone."""
    stats = scan_module(
        module,
        device_width=lambda d: d.width_lambda or 1.0,
        device_height=lambda d: d.height_lambda or 1.0,
        power_nets=power_nets,
    )
    return dict(stats.net_size_histogram)


def _resolve(
    device: Device,
    override: Optional[float],
    resolver: Optional[DimensionResolver],
    kind: str,
) -> float:
    if override is not None:
        return override
    if resolver is not None:
        value = resolver(device)
        if value <= 0:
            raise EstimationError(
                f"device {device.name!r} ({device.cell}): resolver returned "
                f"non-positive {kind} {value}"
            )
        return value
    raise EstimationError(
        f"device {device.name!r} ({device.cell}) has no {kind}: supply a "
        f"device_{kind} resolver or per-device {kind}_lambda"
    )
