"""Kernighan-Lin netlist bipartitioning.

Floor planning starts with partitioning: "the chip is partitioned into
large modules which are laid out independently" (Section 1).  This
module provides the classic Kernighan-Lin (KL) min-cut bipartitioner
over the device/net graph, used by

* :mod:`repro.netlist.metrics` to estimate a module's Rent exponent
  (recursive bisection, counting cut nets per level), and
* users who need to split an oversized module before estimating it
  ("the estimator works well for small and moderate-sized modules, but
  is not intended for area estimation of entire chips").

The implementation is the standard O(passes * V^2)-ish KL with
hyperedge cut counting: a net is cut iff it touches both sides.
Deterministic for a given seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import NetlistError
from repro.netlist.model import Module
from repro.netlist.stats import DEFAULT_POWER_NETS


@dataclass(frozen=True)
class Bipartition:
    """Result of one bisection."""

    left: FrozenSet[str]
    right: FrozenSet[str]
    cut_nets: Tuple[str, ...]

    @property
    def cut_size(self) -> int:
        return len(self.cut_nets)

    @property
    def balance(self) -> float:
        """|left| / total — 0.5 is perfectly balanced."""
        total = len(self.left) + len(self.right)
        return len(self.left) / total if total else 0.0


def bipartition(
    module: Module,
    seed: int = 0,
    passes: int = 8,
    power_nets: Sequence[str] = DEFAULT_POWER_NETS,
) -> Bipartition:
    """Split a module's devices into two balanced halves minimising the
    number of cut nets (Kernighan-Lin with hyperedge gains)."""
    devices = [d.name for d in module.devices]
    if len(devices) < 2:
        raise NetlistError(
            f"module {module.name!r}: need at least 2 devices to partition"
        )
    nets: List[Tuple[str, Tuple[str, ...]]] = [
        (net.name, net.devices())
        for net in module.iter_signal_nets(power_nets)
        if net.component_count >= 2
    ]
    device_nets: Dict[str, List[int]] = {name: [] for name in devices}
    for index, (_, members) in enumerate(nets):
        for name in members:
            device_nets[name].append(index)

    rng = random.Random(seed)
    order = list(devices)
    rng.shuffle(order)
    half = len(order) // 2
    side: Dict[str, int] = {}
    for index, name in enumerate(order):
        side[name] = 0 if index < half else 1

    for _ in range(passes):
        if not _kl_pass(order, side, nets, device_nets):
            break

    left = frozenset(name for name in devices if side[name] == 0)
    right = frozenset(name for name in devices if side[name] == 1)
    cut = tuple(
        name for name, members in nets
        if _is_cut(members, side)
    )
    return Bipartition(left=left, right=right, cut_nets=cut)


def cut_size(module: Module, left: Set[str],
             power_nets: Sequence[str] = DEFAULT_POWER_NETS) -> int:
    """Number of signal nets crossing the given device split."""
    count = 0
    for net in module.iter_signal_nets(power_nets):
        members = net.devices()
        if len(members) < 2:
            continue
        sides = {name in left for name in members}
        if len(sides) == 2:
            count += 1
    return count


# ----------------------------------------------------------------------
# KL machinery
# ----------------------------------------------------------------------
def _is_cut(members: Tuple[str, ...], side: Dict[str, int]) -> bool:
    first = side[members[0]]
    return any(side[name] != first for name in members[1:])


def _move_gain(
    name: str,
    side: Dict[str, int],
    nets: List[Tuple[str, Tuple[str, ...]]],
    device_nets: Dict[str, List[int]],
) -> int:
    """Cut-size reduction if ``name`` switches sides."""
    gain = 0
    my_side = side[name]
    for net_index in device_nets[name]:
        members = nets[net_index][1]
        same = sum(1 for m in members if side[m] == my_side)
        other = len(members) - same
        if other == 0:
            gain -= 1          # net becomes cut
        elif same == 1:
            gain += 1          # this device was the only one here
    return gain


def _kl_pass(
    devices: List[str],
    side: Dict[str, int],
    nets: List[Tuple[str, Tuple[str, ...]]],
    device_nets: Dict[str, List[int]],
) -> bool:
    """One KL improvement pass: greedy swap sequence, keep best prefix.

    Returns True if the pass improved the cut.
    """
    locked: Set[str] = set()
    sequence: List[Tuple[str, str]] = []
    gains: List[int] = []

    working = dict(side)
    for _ in range(len(devices) // 2):
        left_pool = [d for d in devices
                     if working[d] == 0 and d not in locked]
        right_pool = [d for d in devices
                      if working[d] == 1 and d not in locked]
        if not left_pool or not right_pool:
            break
        best_left = max(
            left_pool,
            key=lambda d: _move_gain(d, working, nets, device_nets),
        )
        working[best_left] = 1
        best_right = max(
            right_pool,
            key=lambda d: _move_gain(d, working, nets, device_nets),
        )
        working[best_right] = 0

        # Cumulative gain of the swap sequence so far, measured exactly
        # as the cut-size delta against the pass's starting partition.
        sequence.append((best_left, best_right))
        locked.update((best_left, best_right))
        gains.append(_cut_of(nets, side) - _cut_of(nets, working))

    if not gains:
        return False
    best_prefix = max(range(len(gains)), key=lambda i: gains[i])
    if gains[best_prefix] <= 0:
        return False
    for left_name, right_name in sequence[: best_prefix + 1]:
        side[left_name] = 1
        side[right_name] = 0
    return True


def _cut_of(nets: List[Tuple[str, Tuple[str, ...]]],
            side: Dict[str, int]) -> int:
    return sum(1 for _, members in nets if _is_cut(members, side))
