"""Netlist substrate: circuit data model, parsers, writers, statistics.

The estimator consumes a *module*: a named circuit with external ports,
device instances, and the nets wiring them together.  This package
provides:

* :mod:`repro.netlist.model` — the in-memory circuit representation
  (:class:`Module`, :class:`Device`, :class:`Net`, :class:`Port`).
* :mod:`repro.netlist.builder` — a fluent programmatic constructor.
* :mod:`repro.netlist.verilog` — structural-Verilog subset parser, the
  paper's "circuit schematic expressed in a standard hardware description
  language".
* :mod:`repro.netlist.spice` — SPICE-deck parser for transistor-level
  (full-custom) modules.
* :mod:`repro.netlist.writers` — emit both formats (round-trippable).
* :mod:`repro.netlist.stats` — the schematic scan producing the
  estimator's inputs (N, H, W_i, X_i, y_i and the net-size histogram).
* :mod:`repro.netlist.validate` — structural consistency checks.
"""

from repro.netlist.builder import NetlistBuilder
from repro.netlist.hierarchy import (
    build_library,
    flatten,
    flatten_source,
    inter_module_nets,
)
from repro.netlist.metrics import fanout_profile, rent_exponent
from repro.netlist.partition import Bipartition, bipartition
from repro.netlist.model import Device, Module, Net, Port, PortDirection
from repro.netlist.spice import parse_spice
from repro.netlist.stats import ModuleStatistics, scan_module
from repro.netlist.validate import validate_module
from repro.netlist.verilog import parse_verilog, parse_verilog_library
from repro.netlist.writers import write_spice, write_verilog

__all__ = [
    "Device",
    "Module",
    "ModuleStatistics",
    "Net",
    "NetlistBuilder",
    "Port",
    "PortDirection",
    "Bipartition",
    "bipartition",
    "build_library",
    "fanout_profile",
    "flatten",
    "flatten_source",
    "inter_module_nets",
    "rent_exponent",
    "parse_spice",
    "parse_verilog",
    "parse_verilog_library",
    "scan_module",
    "validate_module",
    "write_spice",
    "write_verilog",
]
