"""Structural-Verilog subset parser.

The paper's estimator reads "the circuit schematic expressed in a
standard hardware description language".  This parser accepts the
structural subset that gate-level schematics use:

* ``module name (port, ...); ... endmodule``
* ``input``/``output``/``inout`` declarations (scalar nets only)
* ``wire`` declarations
* cell instantiations with named connections
  (``NAND2 u1 (.a(n1), .b(n2), .y(n3));``) or positional connections
  (``INV u2 (n3, n4);`` — pins are named ``p0``, ``p1``, ...)

Behavioural constructs (``assign``, ``always``, expressions, vectors)
are out of scope: the estimator needs only the instance/net structure.
Unknown constructs raise :class:`~repro.errors.ParseError` rather than
being silently skipped, so a schematic that exceeds the subset is
reported instead of mis-estimated.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ParseError
from repro.netlist.model import Device, Module, Port, PortDirection
from repro.netlist.validate import validate_module

_IDENT = r"[A-Za-z_][A-Za-z0-9_$]*"
_IDENT_RE = re.compile(_IDENT)

_DIRECTIONS = {
    "input": PortDirection.INPUT,
    "output": PortDirection.OUTPUT,
    "inout": PortDirection.INOUT,
}


def parse_verilog(text: str, filename: str = "<string>") -> Module:
    """Parse structural Verilog source into a single :class:`Module`.

    Exactly one ``module`` definition is expected; use
    :func:`parse_verilog_library` for multi-module files.
    """
    modules = parse_verilog_library(text, filename)
    if len(modules) != 1:
        raise ParseError(
            f"expected exactly one module, found {len(modules)}", filename
        )
    return modules[0]


def parse_verilog_library(text: str, filename: str = "<string>") -> List[Module]:
    """Parse a file containing one or more structural modules."""
    statements = list(_statements(text, filename))
    modules: List[Module] = []
    index = 0
    while index < len(statements):
        statement, line = statements[index]
        if not statement.startswith("module"):
            raise ParseError(
                f"expected 'module', got {statement.split()[0]!r}",
                filename,
                line,
            )
        module, index = _parse_module(statements, index, filename)
        validate_module(module)
        modules.append(module)
    return modules


# ----------------------------------------------------------------------
# tokenisation: strip comments, split on ';' keeping 'endmodule' separate
# ----------------------------------------------------------------------
def _statements(text: str, filename: str) -> Iterator[Tuple[str, int]]:
    text = re.sub(r"/\*.*?\*/", lambda m: re.sub(r"[^\n]", " ", m.group()), text,
                  flags=re.DOTALL)
    text = re.sub(r"//[^\n]*", "", text)

    buffer: List[str] = []
    start_line = 1
    line = 1
    for char in text:
        if char == "\n":
            line += 1
        if char == ";":
            statement = "".join(buffer).strip()
            if statement:
                yield _normalise(statement), start_line
            buffer = []
            start_line = line
            continue
        buffer.append(char)
        # 'endmodule' has no terminating semicolon
        if "".join(buffer).strip().endswith("endmodule"):
            statement = "".join(buffer).strip()
            head = statement[: -len("endmodule")].strip()
            if head:
                raise ParseError(
                    f"unterminated statement before 'endmodule': {head!r}",
                    filename,
                    start_line,
                )
            yield "endmodule", start_line
            buffer = []
            start_line = line
    tail = "".join(buffer).strip()
    if tail:
        raise ParseError(f"unterminated statement: {tail!r}", filename, line)


def _normalise(statement: str) -> str:
    return re.sub(r"\s+", " ", statement).strip()


# ----------------------------------------------------------------------
# grammar
# ----------------------------------------------------------------------
def _parse_module(
    statements: List[Tuple[str, int]], index: int, filename: str
) -> Tuple[Module, int]:
    header, line = statements[index]
    match = re.match(
        rf"module\s+({_IDENT})\s*(?:\((?P<ports>[^)]*)\))?\s*$", header
    )
    if not match:
        raise ParseError(f"malformed module header: {header!r}", filename, line)
    name = match.group(1)
    header_ports = _split_names(match.group("ports") or "", filename, line)

    directions: Dict[str, PortDirection] = {}
    wires: List[str] = []
    instances: List[Device] = []

    index += 1
    while index < len(statements):
        statement, line = statements[index]
        index += 1
        if statement == "endmodule":
            return _assemble(name, header_ports, directions, wires, instances,
                             filename, line), index
        keyword = statement.split(" ", 1)[0]
        if keyword in _DIRECTIONS:
            for port_name in _split_names(statement[len(keyword):], filename, line):
                if port_name in directions:
                    raise ParseError(
                        f"port {port_name!r} declared twice", filename, line
                    )
                directions[port_name] = _DIRECTIONS[keyword]
        elif keyword == "wire":
            wires.extend(_split_names(statement[4:], filename, line))
        elif keyword == "module":
            raise ParseError("nested module definitions are not supported",
                             filename, line)
        else:
            instances.append(_parse_instance(statement, filename, line))

    raise ParseError(f"module {name!r}: missing 'endmodule'", filename, line)


def _parse_instance(statement: str, filename: str, line: int) -> Device:
    match = re.match(
        rf"({_IDENT})\s+({_IDENT})\s*\((?P<conns>.*)\)\s*$", statement
    )
    if not match:
        raise ParseError(
            f"unrecognised statement (not a declaration or instance): "
            f"{statement!r}",
            filename,
            line,
        )
    cell, instance = match.group(1), match.group(2)
    conns = match.group("conns").strip()
    pins: Dict[str, str] = {}
    if conns.startswith("."):
        for part in _split_commas(conns):
            pin_match = re.match(rf"\.({_IDENT})\s*\(\s*({_IDENT})\s*\)\s*$", part)
            if not pin_match:
                raise ParseError(
                    f"instance {instance!r}: malformed named connection "
                    f"{part!r}",
                    filename,
                    line,
                )
            pin, net = pin_match.group(1), pin_match.group(2)
            if pin in pins:
                raise ParseError(
                    f"instance {instance!r}: pin {pin!r} connected twice",
                    filename,
                    line,
                )
            pins[pin] = net
    elif conns:
        for position, part in enumerate(_split_commas(conns)):
            if not _IDENT_RE.fullmatch(part):
                raise ParseError(
                    f"instance {instance!r}: malformed positional connection "
                    f"{part!r}",
                    filename,
                    line,
                )
            pins[f"p{position}"] = part
    if not pins:
        raise ParseError(
            f"instance {instance!r} has no connections", filename, line
        )
    return Device(instance, cell, pins)


def _assemble(
    name: str,
    header_ports: List[str],
    directions: Dict[str, PortDirection],
    wires: List[str],
    instances: List[Device],
    filename: str,
    line: int,
) -> Module:
    module = Module(name)
    for port_name in header_ports:
        direction = directions.get(port_name)
        if direction is None:
            raise ParseError(
                f"module {name!r}: port {port_name!r} has no direction "
                "declaration",
                filename,
                line,
            )
        module.add_port(Port(port_name, direction))
    for port_name in directions:
        if port_name not in header_ports:
            raise ParseError(
                f"module {name!r}: {port_name!r} declared "
                f"{directions[port_name].value} but absent from the port list",
                filename,
                line,
            )
    for device in instances:
        module.add_device(device)
    # Declared-but-unused wires are legal Verilog; materialise them only
    # if an instance or port referenced them (Module.add_device already
    # created nets for referenced names).
    del wires
    return module


def _split_names(text: str, filename: str, line: int) -> List[str]:
    names: List[str] = []
    for part in _split_commas(text):
        if not _IDENT_RE.fullmatch(part):
            raise ParseError(f"malformed identifier {part!r}", filename, line)
        names.append(part)
    return names


def _split_commas(text: str) -> List[str]:
    parts = [part.strip() for part in text.split(",")]
    return [part for part in parts if part]
