"""SPICE-deck parser for transistor-level (full-custom) modules.

Full-custom estimation works at the transistor level: "individual
transistor layouts are used as Standard-Cells" (Section 4.2).  The
natural interchange format for transistor netlists is a SPICE deck.

Supported subset:

* ``.SUBCKT name node node ...`` / ``.ENDS`` — module boundary; the
  subcircuit nodes become module ports (direction ``INOUT``, since SPICE
  carries no direction information).
* ``M<name> drain gate source [bulk] model [W=val] [L=val]`` — MOSFETs.
  ``W`` is read in lambda (this is a scalable-rule flow) and overrides
  the library *width* of the named model; ``L`` is the channel length,
  which is not a footprint dimension — it is parsed and discarded, and
  the cell height always comes from the process database.
* ``R``/``C`` two-terminal elements — mapped to device types ``res`` /
  ``cap``.
* ``X<name> node ... subckt`` is rejected: modules are flat.
* ``*`` comments, ``$``/``;`` trailing comments, ``+`` continuations,
  ``.GLOBAL`` (declares power nets), ``.END``.

A deck without ``.SUBCKT`` is parsed as one module named by the title
line, with every net that looks like an I/O (no internal-only heuristic
is safe, so) — no ports; callers supply ports separately if needed.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import ParseError
from repro.netlist.model import Device, Module, Port, PortDirection
from repro.netlist.validate import validate_module

_PARAM_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)=(.+)$")

#: Multipliers for SPICE magnitude suffixes on parameter values.
_SUFFIXES = {
    "t": 1e12, "g": 1e9, "meg": 1e6, "k": 1e3,
    "m": 1e-3, "u": 1e-6, "n": 1e-9, "p": 1e-12, "f": 1e-15,
}


def parse_spice(text: str, filename: str = "<deck>") -> Module:
    """Parse a SPICE deck into a single module.

    The first ``.SUBCKT`` found defines the module; the title line names
    the module when no subcircuit is present.
    """
    raw_lines = text.splitlines()
    if not raw_lines or not text.strip():
        raise ParseError("empty deck", filename)

    # The first line of a SPICE deck is always the title, even when it
    # looks like a comment.
    title_words = raw_lines[0].lstrip("* \t").split()
    title = title_words[0] if title_words else "spice_module"
    lines = _logical_lines("\n".join(raw_lines[1:]), filename,
                           first_line=2)

    subckt: Optional[Tuple[str, List[str], int]] = None
    body: List[Tuple[str, int]] = []
    in_subckt = False
    for line, number in lines:
        upper = line.upper()
        if upper.startswith(".SUBCKT"):
            if subckt is not None:
                raise ParseError(
                    "multiple .SUBCKT definitions; parse one module per deck",
                    filename,
                    number,
                )
            tokens = line.split()
            if len(tokens) < 2:
                raise ParseError("malformed .SUBCKT line", filename, number)
            subckt = (tokens[1], tokens[2:], number)
            in_subckt = True
        elif upper.startswith(".ENDS"):
            if not in_subckt:
                raise ParseError(".ENDS without .SUBCKT", filename, number)
            in_subckt = False
        elif upper.startswith(".GLOBAL") or upper.startswith(".END"):
            continue
        elif upper.startswith("."):
            # Analysis/option cards are irrelevant to structure.
            continue
        else:
            if subckt is not None and not in_subckt:
                continue  # elements outside the subckt body (test fixtures)
            body.append((line, number))

    if subckt is not None and in_subckt:
        raise ParseError(
            f".SUBCKT {subckt[0]!r} is missing .ENDS", filename, subckt[2]
        )

    name = subckt[0] if subckt else _sanitise(title)
    module = Module(name)
    if subckt:
        for node in subckt[1]:
            module.add_port(Port(node, PortDirection.INOUT))

    for line, number in body:
        device = _parse_element(line, filename, number)
        module.add_device(device)

    validate_module(module)
    return module


def _logical_lines(
    text: str, filename: str, first_line: int = 1
) -> List[Tuple[str, int]]:
    """Strip comments and fold ``+`` continuations."""
    folded: List[Tuple[str, int]] = []
    for number, raw in enumerate(text.splitlines(), start=first_line):
        line = re.split(r"[$;]", raw, maxsplit=1)[0].rstrip()
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("*"):
            continue
        if stripped.startswith("+"):
            if not folded:
                raise ParseError("continuation with no previous line",
                                 filename, number)
            previous, start = folded[-1]
            folded[-1] = (previous + " " + stripped[1:].strip(), start)
        else:
            folded.append((stripped, number))
    return folded


def _parse_element(line: str, filename: str, number: int) -> Device:
    tokens = line.split()
    name = tokens[0]
    kind = name[0].upper()
    if kind == "M":
        return _parse_mosfet(tokens, filename, number)
    if kind in ("R", "C"):
        if len(tokens) < 3:
            raise ParseError(
                f"element {name!r}: expected two nodes", filename, number
            )
        cell = "res" if kind == "R" else "cap"
        return Device(name, cell, {"a": tokens[1], "b": tokens[2]})
    if kind == "X":
        raise ParseError(
            f"element {name!r}: hierarchical X instances are not supported "
            "(flatten the deck first)",
            filename,
            number,
        )
    raise ParseError(
        f"element {name!r}: unsupported element type {kind!r}",
        filename,
        number,
    )


def _parse_mosfet(tokens: List[str], filename: str, number: int) -> Device:
    name = tokens[0]
    params: Dict[str, float] = {}
    positional: List[str] = []
    for token in tokens[1:]:
        match = _PARAM_RE.match(token)
        if match:
            params[match.group(1).upper()] = _value(match.group(2), filename,
                                                    number)
        else:
            positional.append(token)

    # positional = nodes... model ; nodes are 3 (d g s) or 4 (d g s b)
    if len(positional) == 4:
        drain, gate, source = positional[:3]
        model = positional[3]
        bulk = None
    elif len(positional) == 5:
        drain, gate, source, bulk = positional[:4]
        model = positional[4]
    else:
        raise ParseError(
            f"mosfet {name!r}: expected 'd g s [b] model', got "
            f"{len(positional)} positional tokens",
            filename,
            number,
        )
    pins = {"d": drain, "g": gate, "s": source}
    if bulk is not None:
        pins["b"] = bulk
    # W widens the cell footprint; L is electrical only (see module doc).
    width = params.get("W")
    return Device(name, model, pins, width_lambda=width)


def _value(text: str, filename: str, number: int) -> float:
    match = re.fullmatch(r"([-+0-9.eE]+)(meg|[tgkmunpf])?", text.strip(),
                         flags=re.IGNORECASE)
    if not match:
        raise ParseError(f"malformed parameter value {text!r}", filename, number)
    try:
        base = float(match.group(1))
    except ValueError:
        raise ParseError(
            f"malformed parameter value {text!r}", filename, number
        ) from None
    suffix = (match.group(2) or "").lower()
    return base * _SUFFIXES.get(suffix, 1.0)


def _sanitise(title: str) -> str:
    cleaned = re.sub(r"[^A-Za-z0-9_]", "_", title)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "m_" + cleaned
    return cleaned
