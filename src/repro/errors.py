"""Exception hierarchy for the module area estimator.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers embedding the estimator in a larger CAD flow can catch one base
class.  Subclasses mirror the major subsystems: netlist handling,
technology databases, estimation itself, layout generation, and floor
planning.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class NetlistError(ReproError):
    """A netlist is structurally invalid or refers to unknown objects."""


class ParseError(NetlistError):
    """A netlist source file could not be parsed.

    Carries the source location so CAD-flow wrappers can point the user
    at the offending line.
    """

    def __init__(self, message: str, filename: str = "<string>", line: int = 0):
        self.filename = filename
        self.line = line
        if line:
            message = f"{filename}:{line}: {message}"
        super().__init__(message)


class MutationError(NetlistError):
    """An ECO edit (``repro.incremental`` Mutation) is malformed, names
    unknown netlist objects, or an edits file could not be decoded."""


class TechnologyError(ReproError):
    """A process database is inconsistent or missing required entries."""


class EstimationError(ReproError):
    """The estimator was given inputs it cannot produce an estimate for."""


class StaleStatisticsError(EstimationError):
    """A ModuleStatistics snapshot is older than the netlist it claims
    to describe (its ``stats_version`` does not match the expected
    revision).  Raised loudly instead of silently serving a plan that
    was compiled for a different netlist state."""


class BackendUnavailableError(EstimationError):
    """A kernel evaluation backend was requested explicitly but its
    runtime dependency (NumPy, for the ``numpy`` backend) is not
    importable.  ``auto`` never raises this — it silently falls back to
    the dependency-free ``exact`` backend."""


class LayoutError(ReproError):
    """A layout flow (placement, routing, packing) failed."""


class FloorplanError(ReproError):
    """The floorplanner could not realise the requested plan."""


class DatabaseError(ReproError):
    """The estimate interchange database is malformed."""


class BenchmarkError(ReproError):
    """A perf-trajectory record is malformed or a bench run failed."""


class KernelCacheError(ReproError):
    """An on-disk kernel-cache file is malformed, stale, or unreadable."""


class CheckpointError(ReproError):
    """A portfolio-optimizer resume file is malformed, truncated, from
    an unsupported schema version, or was written for a different
    design or configuration.  Raised after validating the *whole* file
    and before any optimizer state is touched (the
    :class:`KernelCacheError` pattern for on-disk state), so a failed
    resume never corrupts a live run."""


class FrontendError(ReproError):
    """A frontend input (BLIF netlist, Liberty library, synthesis
    result) is malformed, incomplete, or inconsistent with the design
    that references it.  Raised after validating the *whole* input and
    before any library or module state is mutated (the
    :class:`KernelCacheError` pattern for external artifacts), so a bad
    ``.lib`` or ``.blif`` never leaves a half-ingested technology
    database behind."""


class ObservabilityError(ReproError):
    """A trace file or explain report is malformed or inconsistent."""


class VerificationError(ReproError):
    """The differential verification harness found a violated invariant,
    or a verify artifact (seed record, report) is malformed."""


class ServiceError(ReproError):
    """Base class for estimation-service failures (``repro.service``).

    The HTTP layer maps each subclass onto one status code, so a
    caller embedding the engine facade directly sees the same taxonomy
    as a client of ``mae serve``."""


class SessionError(ServiceError):
    """A service session is unknown, already closed, or the engine's
    session limit is reached (HTTP 404 / 409)."""


class QueueFullError(ServiceError):
    """The engine's bounded request queue is full — the backpressure
    signal (HTTP 429).  Clients should retry with backoff."""


class RequestTimeoutError(ServiceError):
    """An estimate request waited longer than the per-request timeout
    for the dispatcher to serve it (HTTP 504).  The request is
    abandoned: its result, if later computed, is discarded."""


class ServiceClosedError(ServiceError):
    """The engine is shutting down (or already shut down) and no longer
    accepts work (HTTP 503).  In-flight requests accepted before the
    shutdown are still drained."""
