"""Dimension handling in lambda-based design rules.

The paper works throughout in the Mead-Conway scalable design-rule system:
all geometry is expressed in units of ``lambda``, the maximum allowable
mask misalignment, and areas in ``lambda**2``.  A process database carries
the physical value of lambda (in micrometres) for one fabrication process;
these helpers convert between the scalable and the physical domains.

Keeping the conversion in one place avoids the classic unit bug where one
subsystem works in lambda and another in microns.  Everything inside
:mod:`repro` works in lambda; conversion to physical units happens only at
reporting boundaries.
"""

from __future__ import annotations

import math


def lambda_to_microns(value_lambda: float, lambda_um: float) -> float:
    """Convert a length in lambda to micrometres.

    ``lambda_um`` is the physical size of one lambda for the process,
    e.g. 2.5 for the paper's nMOS process.
    """
    if lambda_um <= 0:
        raise ValueError(f"lambda_um must be positive, got {lambda_um}")
    return value_lambda * lambda_um


def microns_to_lambda(value_um: float, lambda_um: float) -> float:
    """Convert a length in micrometres to lambda."""
    if lambda_um <= 0:
        raise ValueError(f"lambda_um must be positive, got {lambda_um}")
    return value_um / lambda_um


def area_lambda2_to_um2(area_lambda2: float, lambda_um: float) -> float:
    """Convert an area in lambda^2 to square micrometres."""
    if lambda_um <= 0:
        raise ValueError(f"lambda_um must be positive, got {lambda_um}")
    return area_lambda2 * lambda_um * lambda_um


def area_um2_to_lambda2(area_um2: float, lambda_um: float) -> float:
    """Convert an area in square micrometres to lambda^2."""
    if lambda_um <= 0:
        raise ValueError(f"lambda_um must be positive, got {lambda_um}")
    return area_um2 / (lambda_um * lambda_um)


def area_lambda2_to_mm2(area_lambda2: float, lambda_um: float) -> float:
    """Convert an area in lambda^2 to square millimetres."""
    return area_lambda2_to_um2(area_lambda2, lambda_um) / 1e6


def format_area(area_lambda2: float, lambda_um: float | None = None) -> str:
    """Render an area for reports: lambda^2 first, physical in brackets."""
    if area_lambda2 < 0:
        raise ValueError(f"area must be non-negative, got {area_lambda2}")
    text = f"{area_lambda2:,.0f} lambda^2"
    if lambda_um is not None:
        um2 = area_lambda2_to_um2(area_lambda2, lambda_um)
        if um2 >= 1e6:
            text += f" ({um2 / 1e6:.3f} mm^2)"
        else:
            text += f" ({um2:,.1f} um^2)"
    return text


def aspect_ratio(width: float, height: float) -> float:
    """Width / height aspect ratio, guarding degenerate dimensions."""
    if width <= 0 or height <= 0:
        raise ValueError(f"dimensions must be positive, got {width} x {height}")
    return width / height


def normalized_aspect(width: float, height: float) -> float:
    """Aspect ratio folded to be >= 1 (shape regardless of orientation)."""
    ratio = aspect_ratio(width, height)
    return ratio if ratio >= 1.0 else 1.0 / ratio


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division for non-negative operands."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    if numerator < 0:
        raise ValueError(f"numerator must be non-negative, got {numerator}")
    return -(-numerator // denominator)


def round_up(value: float) -> int:
    """Round a non-negative expectation value up to the next integer.

    The paper rounds every expectation (E(i), E(M)) up; a tiny epsilon
    guards against floating noise pushing an exact integer over the edge.
    """
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    nearest = round(value)
    if abs(value - nearest) <= 1e-9:
        return int(nearest)
    return int(math.ceil(value))
