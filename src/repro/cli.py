"""The ``mae`` command-line tool.

Subcommands mirror the deliverables:

* ``mae estimate <schematic>`` — estimate one module (the paper's core
  use case: schematic + process database -> area and aspect ratio).
* ``mae scan <schematic>`` — print the statistics the estimator
  consumes (N, H, W_avg, net-size histogram).
* ``mae explain <module>`` — per-net breakdown of an estimate: every
  Eq. 2-3 track expectation and Eq. 4-11 feed-through term, reassembled
  into the final Eq. 12/13 area (see docs/OBSERVABILITY.md).
* ``mae process list|show|export`` — inspect the shipped process
  databases.
* ``mae table1 | table2 | central-row | pipeline | iterations |
  runtime | ablation | pla`` — regenerate the paper's tables, figure,
  and the extension experiments.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core.config import EstimatorConfig
from repro.core.estimator import ModuleAreaEstimator
from repro.errors import ReproError
from repro.netlist.stats import scan_module
from repro.technology.libraries import builtin_processes
from repro.technology.loader import save_process_file
from repro.units import format_area


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if not hasattr(args, "handler"):
        parser.print_help()
        return 2
    try:
        from repro.perf.backends import apply_cli_backend
        from repro.perf.diskcache import persistent_kernel_caches

        # Resolve --backend / $MAE_BACKEND once, up front: every
        # estimator call in the command (and every pool worker it
        # starts) inherits the selection.  An explicitly named but
        # unavailable backend fails here with a clean error.
        apply_cli_backend(getattr(args, "backend", None))

        # Opt-in cross-process warm start: load the kernel caches before
        # the command runs and save them back after it succeeds, so
        # repeated CLI invocations skip the shared combinatorial work.
        with persistent_kernel_caches(getattr(args, "kernel_cache", None)):
            args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-report; exit
        # quietly like other Unix filters (stdout is already dead, so
        # suppress the interpreter's flush-on-exit complaint too).
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mae",
        description="Module Area Estimator for VLSI layout "
                    "(Chen & Bushnell, DAC 1988 reproduction)",
    )
    parser.add_argument(
        "--kernel-cache", default=None, metavar="FILE",
        help="persist the probability-kernel caches to FILE across runs "
             "(loaded before the command, saved after; $MAE_KERNEL_CACHE "
             "sets a default)",
    )
    from repro.perf.backends import BACKEND_CHOICES

    parser.add_argument(
        "--backend", choices=list(BACKEND_CHOICES), default=None,
        help="kernel evaluation backend: 'exact' (reference scalar "
             "kernels, the default), 'numpy' (vectorized float64, "
             "requires the [perf] extra), or 'auto' (numpy when "
             "available, else exact; $MAE_BACKEND sets a default)",
    )
    sub = parser.add_subparsers(title="commands")

    estimate = sub.add_parser(
        "estimate", help="estimate area/aspect of a schematic file"
    )
    estimate.add_argument("schematic", help="Verilog (.v) or SPICE (.sp) file")
    _add_process_argument(estimate)
    estimate.add_argument(
        "--methodology", choices=("standard-cell", "full-custom", "both"),
        default="both",
    )
    estimate.add_argument("--rows", type=int, default=None,
                          help="fix the standard-cell row count")
    estimate.add_argument("--output", default=None,
                          help="write the estimate database to this JSON file")
    estimate.add_argument(
        "--track-model", choices=("upper-bound", "shared"),
        default="upper-bound",
        help="'shared' uses the analytic track-sharing model "
             "(paper Section 7 future work)",
    )
    estimate.add_argument(
        "--aspects", type=int, default=0, metavar="N",
        help="also print N aspect-ratio candidates per methodology "
             "(paper Section 7 future work)",
    )
    estimate.set_defaults(handler=_cmd_estimate)

    layout = sub.add_parser(
        "layout", help="run the real layout oracle on a schematic"
    )
    layout.add_argument("schematic")
    _add_process_argument(layout)
    layout.add_argument("--rows", type=int, default=None,
                        help="standard-cell rows (gate-level input only)")
    layout.add_argument("--seed", type=int, default=0)
    layout.add_argument("--svg", default=None,
                        help="write the layout drawing to this SVG file")
    layout.set_defaults(handler=_cmd_layout)

    compare = sub.add_parser(
        "compare",
        help="compare all three methodologies for a gate-level schematic",
    )
    compare.add_argument("schematic")
    _add_process_argument(compare)
    compare.set_defaults(handler=_cmd_compare)

    flatten_cmd = sub.add_parser(
        "flatten", help="flatten a hierarchical Verilog library"
    )
    flatten_cmd.add_argument("schematic", help="multi-module Verilog file")
    flatten_cmd.add_argument("--top", default=None,
                             help="top module (default: inferred)")
    flatten_cmd.add_argument("--output", default=None,
                             help="write flat Verilog here (default: stdout)")
    flatten_cmd.set_defaults(handler=_cmd_flatten)

    scan = sub.add_parser("scan", help="print estimator input statistics")
    scan.add_argument("schematic")
    _add_process_argument(scan)
    scan.add_argument(
        "--metrics", action="store_true",
        help="also print fanout profile and a Rent-exponent estimate",
    )
    scan.set_defaults(handler=_cmd_scan)

    explain = sub.add_parser(
        "explain",
        help="print the per-net Eq. 2-11 terms behind an estimate",
    )
    explain.add_argument(
        "module",
        help="schematic file, or a suite module name (t1_full_adder, "
             "t2_datapath, ...)",
    )
    _add_process_argument(explain)
    explain.add_argument(
        "--methodology", choices=("standard-cell", "full-custom"),
        default="standard-cell",
    )
    explain.add_argument("--rows", type=int, default=None,
                         help="fix the standard-cell row count")
    explain.add_argument(
        "--congestion", action="store_true",
        help="print the per-channel track-demand distribution and "
             "routability score instead of the per-net terms "
             "(standard-cell only)",
    )
    explain.add_argument(
        "--channel-capacity", type=int, default=None, metavar="T",
        help="override the channel track capacity for --congestion "
             "(default: the process database's value, else the model "
             "default)",
    )
    explain.add_argument(
        "--trace", default=None, metavar="FILE",
        help="also record the estimation spans/metrics to this JSONL file",
    )
    explain.set_defaults(handler=_cmd_explain)

    process = sub.add_parser("process", help="process database utilities")
    process_sub = process.add_subparsers(title="actions")
    p_list = process_sub.add_parser("list", help="list shipped processes")
    p_list.set_defaults(handler=_cmd_process_list)
    p_show = process_sub.add_parser("show", help="describe one process")
    _add_process_argument(p_show)
    p_show.set_defaults(handler=_cmd_process_show)
    p_export = process_sub.add_parser("export", help="export to JSON")
    _add_process_argument(p_export)
    p_export.add_argument("output")
    p_export.set_defaults(handler=_cmd_process_export)

    for name, help_text, handler in (
        ("table1", "regenerate Table 1 (full-custom)", _cmd_table1),
        ("table2", "regenerate Table 2 (standard-cell)", _cmd_table2),
        ("central-row", "run the S1 central-row sweep", _cmd_central_row),
        ("pipeline", "run the Fig. 1 pipeline (F1)", _cmd_pipeline),
        ("iterations", "run the C2 iteration comparison", _cmd_iterations),
        ("runtime", "run the S2 runtime measurement", _cmd_runtime),
        ("pla", "run the P1 PLA linearity check", _cmd_pla),
        ("scaling", "run the size-scaling study", _cmd_scaling),
    ):
        command = sub.add_parser(name, help=help_text)
        command.set_defaults(handler=handler)
        if name in ("table1", "table2"):
            _add_jobs_argument(command)
        if name == "runtime":
            command.add_argument(
                "--trace", default=None, metavar="FILE",
                help="record the estimation spans/metrics to this "
                     "JSONL file (docs/OBSERVABILITY.md)",
            )

    ablation = sub.add_parser("ablation", help="run an ablation study")
    ablation.add_argument(
        "which", choices=("sharing", "rows", "oracle"),
        help="sharing = A1 track sharing; rows = A3 row sweep; "
             "oracle = oracle-quality study",
    )
    _add_jobs_argument(ablation)
    ablation.set_defaults(handler=_cmd_ablation)

    bench = sub.add_parser(
        "bench",
        help="run the batch-engine perf benchmark and write BENCH_*.json",
    )
    _add_jobs_argument(bench)
    bench.set_defaults(jobs=4)  # the parallel phase is the point here
    bench.add_argument("--smoke", action="store_true",
                       help="tiny run for CI: validates the harness and "
                            "the emitted record, no timing claims")
    bench.add_argument("--output", default=None,
                       help="destination JSON file "
                            "(default: BENCH_batch_engine.json)")
    bench.add_argument("--assert-plan-speedup", type=float, default=None,
                       metavar="X",
                       help="fail unless the compiled-plan path is at "
                            "least X times the batch jobs=1 path")
    bench.add_argument("--assert-backend-speedup", type=float, default=None,
                       metavar="X",
                       help="fail unless the numpy backend's batched "
                            "row-sweep kernel phase is at least X times "
                            "faster than exact (CI gate)")
    bench.add_argument("--assert-incremental-speedup", type=float,
                       default=None, metavar="X",
                       help="fail unless the incremental ECO path is at "
                            "least X times rebuild-per-edit")
    bench.add_argument("--assert-serve-throughput", type=float,
                       default=None, metavar="EPS",
                       help="fail unless the serve phase sustains at "
                            "least EPS estimates/sec across its "
                            "concurrent sessions")
    bench.add_argument("--portfolio-modules", type=int, default=None,
                       metavar="N",
                       help="design size for the floorplan portfolio "
                            "phase (default: 48 in --smoke, 1000 "
                            "otherwise)")
    bench.add_argument("--assert-portfolio-speedup", type=float,
                       default=None, metavar="X",
                       help="fail unless the portfolio floorplan engine "
                            "is at least X times the serial loop in "
                            "modules/sec (CI gate)")
    bench.add_argument("--assert-congestion-overhead", type=float,
                       default=None, metavar="X",
                       help="fail if the routability-scored portfolio "
                            "sweep takes more than X times the unscored "
                            "sweep's wall time (CI gate; lower is better)")
    bench.set_defaults(handler=_cmd_bench)

    floorplan = sub.add_parser(
        "floorplan",
        help="race the portfolio optimizer over a multi-module design "
             "(docs/PERFORMANCE.md)",
    )
    floorplan.add_argument(
        "design",
        help="an integer N (the seeded N-module hierarchical workload) "
             "or a Verilog library file",
    )
    _add_process_argument(floorplan)
    _add_jobs_argument(floorplan)
    floorplan.add_argument(
        "--portfolio", default=None, metavar="CSV",
        help="comma-separated searcher subset "
             "(default: annealing,greedy,mixed)",
    )
    floorplan.add_argument(
        "--serial", action="store_true",
        help="run the serial rescan-per-query baseline engine instead "
             "of the compiled portfolio engine (same trajectory, "
             "bench's before-picture)",
    )
    floorplan.add_argument("--steps", type=int, default=None,
                           help="moves per searcher (default: scaled "
                                "to the design size)")
    floorplan.add_argument("--seed", type=int, default=0,
                           help="trajectory seed (default 0); same "
                                "seed, same run, bit for bit")
    floorplan.add_argument("--design-seed", type=int, default=None,
                           metavar="S",
                           help="seed for the generated workload "
                                "(default: --seed)")
    floorplan.add_argument("--resume", default=None, metavar="FILE",
                           help="resume from this checkpoint file "
                                "(validated wholesale before any state "
                                "is touched)")
    floorplan.add_argument("--checkpoint", default=None, metavar="FILE",
                           help="write an atomic checkpoint here every "
                                "--checkpoint-every steps per searcher")
    floorplan.add_argument("--checkpoint-every", type=int, default=200,
                           metavar="N",
                           help="steps per searcher between checkpoints")
    floorplan.add_argument("--stop-after", type=int, default=None,
                           metavar="N",
                           help="halt every searcher at step N without "
                                "changing the run's identity (resume "
                                "continues to --steps bit-identically)")
    floorplan.add_argument("--row-window", type=int, default=2,
                           help="row-count search radius per move")
    floorplan.add_argument("--aspect-target", type=float, default=1.0,
                           help="design-level target aspect ratio")
    floorplan.add_argument("--aspect-weight", type=float, default=0.25,
                           help="aspect-penalty weight in the objective")
    floorplan.add_argument("--routability-weight", type=float, default=0.0,
                           help="congestion-risk weight in the objective: "
                                "each move's cost is scaled by 1 + W * "
                                "(1 - routability) (default 0.0, which "
                                "keeps the unscored arithmetic bit for "
                                "bit)")
    floorplan.add_argument("--spot-checks", type=int, default=8,
                           metavar="K",
                           help="exact-backend recomputations of table "
                                "entries after the race (0 disables)")
    floorplan.add_argument("--json", default=None, metavar="FILE",
                           help="write the full result record as JSON")
    floorplan.set_defaults(handler=_cmd_floorplan)

    serve = sub.add_parser(
        "serve",
        help="run the estimation service: HTTP+JSON sessions over the "
             "shared engine facade (docs/SERVICE.md)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1; use "
                            "0.0.0.0 behind a trusted proxy only — "
                            "there is no auth layer)")
    serve.add_argument("--port", type=int, default=8750,
                       help="bind port (default: 8750; 0 picks an "
                            "ephemeral port and prints it)")
    serve.add_argument("--max-sessions", type=int, default=64, metavar="N",
                       help="open-session limit; exceeding it answers "
                            "409 (default: 64)")
    serve.add_argument("--queue-limit", type=int, default=256, metavar="N",
                       help="bounded estimate-queue depth; a full queue "
                            "answers 429 (default: 256)")
    serve.add_argument("--coalesce-limit", type=int, default=32,
                       metavar="N",
                       help="max queued requests one dispatcher drain "
                            "serves together (default: 32)")
    serve.add_argument("--timeout", type=float, default=30.0, metavar="S",
                       help="default per-request seconds before a queued "
                            "estimate is abandoned with 504 "
                            "(default: 30; bodies may override)")
    serve.add_argument("--max-inflight", type=int, default=128, metavar="N",
                       help="concurrently handled HTTP requests before "
                            "the server answers 429 (default: 128)")
    _add_jobs_argument(serve)
    serve.set_defaults(handler=_cmd_serve)

    eco = sub.add_parser(
        "eco",
        help="apply an ECO edit sequence and re-estimate incrementally "
             "(O(affected nets) per edit, verified against a rescan)",
    )
    eco.add_argument(
        "module",
        help="schematic file, or a suite module name (t1_full_adder, "
             "t2_datapath, ...)",
    )
    eco.add_argument("--edits", required=True, metavar="FILE",
                     help="JSON edit sequence (see docs/TESTING.md for "
                          "the format)")
    eco.add_argument("--sample", type=int, default=None, metavar="N",
                     help="instead of reading --edits, generate N random "
                          "valid edits (--seed) and write them to FILE "
                          "before applying")
    eco.add_argument("--seed", type=int, default=0,
                     help="seed for --sample (default: 0)")
    eco.add_argument("--rows", type=int, default=None,
                     help="fix the standard-cell row count")
    eco.add_argument("--step", action="store_true",
                     help="print the estimate after every edit, not just "
                          "the final one")
    eco.add_argument("--no-verify", action="store_true",
                     help="skip the final bit-identity check against a "
                          "from-scratch rescan")
    _add_process_argument(eco)
    eco.set_defaults(handler=_cmd_eco)

    verify = sub.add_parser(
        "verify",
        help="differential verification: estimator vs layout oracles "
             "over a seeded corpus, plus bit-identity invariants",
    )
    verify.add_argument("--seeds", type=int, default=25, metavar="N",
                        help="number of corpus cases to draw (default: 25)")
    verify.add_argument("--base-seed", type=int, default=0, metavar="S",
                        help="corpus base seed (default: 0); the whole "
                             "sweep is deterministic in this value")
    verify.add_argument("--report", default=None, metavar="FILE",
                        help="write the drift-gate report JSON "
                             "(e.g. VERIFY_envelope.json)")
    verify.add_argument("--records", default=None, metavar="FILE",
                        help="persist failing cases as replayable seed "
                             "records (default: VERIFY_failures.json, "
                             "written only when failures occur)")
    verify.add_argument("--replay", default=None, metavar="FILE",
                        help="re-run the seed records in FILE instead of "
                             "drawing a fresh corpus")
    verify.add_argument("--skip-envelope", action="store_true",
                        help="invariants and metamorphic checks only "
                             "(no layout oracles; the fast CI smoke mode)")
    verify.add_argument("--check", action="append", dest="checks",
                        default=None, metavar="NAME",
                        help="run only this per-module check (repeatable), "
                             "e.g. --check incremental_equivalence; the "
                             "envelope still follows --skip-envelope")
    verify.add_argument("--inject", type=float, default=None, metavar="X",
                        help="self-test: scale the direct standard-cell "
                             "path AND the numpy backend's track kernel "
                             "by X and require the harness to catch both "
                             "divergences")
    verify.add_argument("--backend-report", default=None, metavar="FILE",
                        help="measure the numpy-vs-exact float error "
                             "envelope over the corpus and write the "
                             "artifact (VERIFY_backend_envelope.json "
                             "format) to FILE")
    verify.add_argument("--congestion-report", default=None, metavar="FILE",
                        help="route the corpus's standard-cell cases and "
                             "write the predicted-vs-routed channel "
                             "demand artifact "
                             "(VERIFY_congestion_envelope.json format) "
                             "to FILE")
    _add_jobs_argument(verify)
    verify.set_defaults(handler=_cmd_verify)

    synth = sub.add_parser(
        "synth",
        help="synthesize RTL with an optional yosys binary "
             "(read_liberty -> synth -> dfflibmap -> abc -> stat) and "
             "record the reported chip area; skips gracefully when no "
             "yosys exists",
    )
    synth.add_argument("verilog", help="RTL Verilog source file")
    synth.add_argument("--liberty", required=True, metavar="LIB",
                       help="Liberty cell library to map against")
    synth.add_argument("--top", default=None, metavar="NAME",
                       help="top module (default: yosys -auto-top)")
    synth.add_argument("--blif-out", default=None, metavar="FILE",
                       help="also write the mapped netlist as BLIF "
                            "(ready for mae estimate / mae calibrate)")
    synth.add_argument("--pdn-margin", type=float, default=None,
                       metavar="X",
                       help="report the chip area scaled by a power-"
                            "grid/overhead margin as well (e.g. 1.4)")
    synth.add_argument("--yosys", default=None, metavar="BIN",
                       help="yosys binary to use (default: $MAE_YOSYS "
                            "or PATH lookup)")
    synth.add_argument("--require", action="store_true",
                       help="fail instead of skipping when no yosys "
                            "binary is found (the nightly CI mode)")
    synth.add_argument("--json", default=None, metavar="FILE",
                       help="write the synthesis record as JSON")
    synth.set_defaults(handler=_cmd_synth)

    calibrate = sub.add_parser(
        "calibrate",
        help="fit the per-library correction factor between the "
             "estimator and Liberty cell areas over the golden "
             "frontend fixtures, and write the committed accuracy "
             "envelope (VERIFY_frontend_envelope.json)",
    )
    calibrate.add_argument("--fixtures", default=None, metavar="DIR",
                           help="fixture directory holding *.blif and "
                                "one *.lib (default: the committed "
                                "tests/fixtures/frontend)")
    calibrate.add_argument("--pdn-margin", type=float, default=None,
                           metavar="X",
                           help="power-grid/overhead margin applied to "
                                "the Liberty reference areas "
                                "(default: 1.4)")
    calibrate.add_argument("--slack", type=float, default=None,
                           metavar="X",
                           help="absolute residual slack added around "
                                "the measured band (default: 0.05)")
    calibrate.add_argument("--report", default=None, metavar="FILE",
                           help="where to write the envelope artifact "
                                "(default: VERIFY_frontend_envelope"
                                ".json at the repo root)")
    calibrate.set_defaults(handler=_cmd_calibrate)

    return parser


def _add_process_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--tech", choices=sorted(builtin_processes()), default="nmos",
        help="fabrication process database (default: nmos)",
    )


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan estimation tasks across N worker processes "
             "(default: 1, the deterministic serial path; results are "
             "identical at any job count)",
    )


def _resolve_process(args):
    return builtin_processes()[args.tech]()


# ----------------------------------------------------------------------
# command handlers
# ----------------------------------------------------------------------
def _cmd_estimate(args) -> None:
    process = _resolve_process(args)
    config = EstimatorConfig(
        rows=args.rows,
        track_model=getattr(args, "track_model", "upper-bound"),
    )
    estimator = ModuleAreaEstimator(process, config)
    module = estimator.load_schematic(args.schematic)
    methodologies = (
        ("standard-cell", "full-custom")
        if args.methodology == "both"
        else (args.methodology,)
    )
    record = estimator.estimate(module, methodologies)

    print(f"module {module.name}: {record.statistics.describe()}")
    if record.standard_cell is not None:
        sc = record.standard_cell
        print(
            f"standard-cell: {format_area(sc.area, process.lambda_um)}, "
            f"{sc.rows} rows, {sc.tracks} tracks, "
            f"{sc.feedthroughs} feed-throughs, "
            f"{sc.width:.0f} x {sc.height:.0f} lambda "
            f"(aspect {sc.aspect_ratio:.2f})"
        )
    if record.full_custom is not None:
        fc = record.full_custom
        print(
            f"full-custom (exact areas): "
            f"{format_area(fc.area, process.lambda_um)}, "
            f"{fc.width:.0f} x {fc.height:.0f} lambda "
            f"(aspect {fc.aspect_ratio:.2f})"
        )
    if record.full_custom_average is not None:
        fca = record.full_custom_average
        print(
            f"full-custom (average areas): "
            f"{format_area(fca.area, process.lambda_um)}"
        )
    print(f"recommended methodology: {record.best_methodology()}")
    if getattr(args, "aspects", 0):
        from repro.core.candidates import candidate_shapes

        print(f"\naspect-ratio candidates (Section 7 extension):")
        for label, width, height in candidate_shapes(
            module, process, config, count=args.aspects
        ):
            print(f"  {label:12s} {width:8.0f} x {height:8.0f} lambda "
                  f"(aspect {width / height:.2f})")
    if args.output:
        from repro.iodb.database import EstimateDatabase

        database = EstimateDatabase(process.name)
        database.add(record)
        database.save(args.output)
        print(f"estimate database written to {args.output}")


def _cmd_layout(args) -> None:
    from repro.layout.full_custom_flow import layout_full_custom
    from repro.layout.standard_cell_flow import layout_standard_cell
    from repro.technology.process import DeviceKind
    from repro.viz import full_custom_to_svg, placement_to_svg

    process = _resolve_process(args)
    estimator = ModuleAreaEstimator(process)
    module = estimator.load_schematic(args.schematic)

    kinds = {process.device_kind(d) for d in module.devices}
    svg_text = None
    if kinds <= {DeviceKind.TRANSISTOR, DeviceKind.PASSIVE}:
        layout = layout_full_custom(module, process, seed=args.seed)
        print(
            f"full-custom layout of {module.name}: "
            f"{layout.width:.0f} x {layout.height:.0f} lambda, "
            f"area {format_area(layout.area, process.lambda_um)}, "
            f"packing efficiency {layout.packing_efficiency:.0%}"
        )
        svg_text = full_custom_to_svg(layout)
    else:
        rows = args.rows
        if rows is None:
            from repro.core.standard_cell import estimate_standard_cell

            rows = estimate_standard_cell(module, process).rows
        layout = layout_standard_cell(
            module, process, rows=rows, seed=args.seed,
            keep_placement=bool(args.svg),
        )
        print(
            f"standard-cell layout of {module.name}: {rows} rows, "
            f"{layout.tracks} tracks, {layout.feedthroughs} feed-throughs, "
            f"{layout.width:.0f} x {layout.height:.0f} lambda, "
            f"area {format_area(layout.area, process.lambda_um)}"
        )
        if args.svg:
            svg_text = placement_to_svg(layout.placement)
    if args.svg and svg_text is not None:
        from pathlib import Path

        Path(args.svg).write_text(svg_text)
        print(f"drawing written to {args.svg}")


def _cmd_compare(args) -> None:
    from repro.core.gate_array import compare_methodologies

    process = _resolve_process(args)
    estimator = ModuleAreaEstimator(process)
    module = estimator.load_schematic(args.schematic)
    areas = compare_methodologies(module, process)
    print(f"module {module.name} under {process.name}:")
    for methodology, area in sorted(areas.items(), key=lambda kv: kv[1]):
        print(f"  {methodology:14s} {format_area(area, process.lambda_um)}")
    winner = min(areas, key=areas.get)
    print(f"smallest: {winner}")
    if "full-custom" not in areas:
        print("(full-custom skipped: some cells have no transistor "
              "expansion)")


def _cmd_flatten(args) -> None:
    from pathlib import Path

    from repro.netlist.hierarchy import build_library, flatten, _infer_top
    from repro.netlist.verilog import parse_verilog_library
    from repro.netlist.writers import write_verilog

    text = Path(args.schematic).read_text()
    library = build_library(parse_verilog_library(text, args.schematic))
    top = args.top or _infer_top(library)
    # "__" keeps the flattened names valid Verilog identifiers.
    flat = flatten(library, top, separator="__")
    output = write_verilog(flat)
    if args.output:
        Path(args.output).write_text(output)
        print(f"flat module {flat.name} ({flat.device_count} devices) "
              f"written to {args.output}")
    else:
        print(output, end="")


def _cmd_scan(args) -> None:
    process = _resolve_process(args)
    estimator = ModuleAreaEstimator(process)
    module = estimator.load_schematic(args.schematic)
    stats = scan_module(
        module,
        device_width=process.device_width,
        device_height=process.device_height,
        port_width=process.port_pitch,
    )
    print(stats.describe())
    print("width histogram (W_i, X_i):", list(stats.width_histogram))
    print("net sizes (D, y_D):", list(stats.net_size_histogram))
    if getattr(args, "metrics", False):
        from repro.errors import NetlistError
        from repro.netlist.metrics import (
            average_pins_per_device,
            fanout_profile,
            rent_exponent,
        )

        profile = fanout_profile(module)
        print(f"fanout: mean {profile.mean:.2f}, max {profile.maximum}, "
              f"{profile.two_point_fraction:.0%} two-point nets")
        print(f"average pins per device: "
              f"{average_pins_per_device(module):.2f}")
        try:
            rent = rent_exponent(module)
            print(f"Rent exponent: p = {rent.exponent:.2f} "
                  f"(k = {rent.coefficient:.1f}, "
                  f"{rent.sample_count} blocks)")
        except NetlistError as exc:
            print(f"Rent exponent: unavailable ({exc})")


def _cmd_explain(args) -> None:
    # Imported lazily: repro.obs.explain pulls in the whole estimator
    # stack, which the lightweight subcommands never need.
    from repro.obs.explain import (
        explain_full_custom,
        explain_standard_cell,
        format_congestion_explanation,
        format_full_custom_explanation,
        format_standard_cell_explanation,
        resolve_module,
    )
    from repro.obs.jsonl import write_trace
    from repro.obs.trace import Tracer, use_tracer

    process = _resolve_process(args)
    config = EstimatorConfig(rows=args.rows)
    module = resolve_module(args.module, process)

    if args.congestion and args.methodology != "standard-cell":
        raise ReproError(
            "--congestion needs the standard-cell methodology: the "
            "full-custom flow has no routing channels"
        )

    tracer = Tracer() if args.trace else None

    def run():
        if args.congestion:
            from repro.congestion.model import congestion_report

            return format_congestion_explanation(
                congestion_report(
                    module, process, rows=args.rows, config=config,
                    capacity=args.channel_capacity,
                )
            )
        if args.methodology == "standard-cell":
            return format_standard_cell_explanation(
                explain_standard_cell(module, process, config)
            )
        return format_full_custom_explanation(
            explain_full_custom(module, process, config)
        )

    if tracer is None:
        print(run())
    else:
        with use_tracer(tracer):
            with tracer.span("explain") as span:
                span.set("module", module.name)
                span.set("methodology", args.methodology)
                report = run()
        print(report)
        write_trace(tracer, args.trace)
        print(f"trace written to {args.trace}")


def _cmd_process_list(args) -> None:
    del args
    for name, factory in sorted(builtin_processes().items()):
        process = factory()
        print(f"{name}: {process.name} - {process.description}")


def _cmd_process_show(args) -> None:
    process = _resolve_process(args)
    print(f"{process.name} (lambda = {process.lambda_um} um)")
    print(f"  row height:        {process.row_height} lambda")
    print(f"  feed-through width: {process.feedthrough_width} lambda")
    print(f"  track pitch:       {process.track_pitch} lambda")
    print(f"  port pitch:        {process.port_pitch} lambda")
    print(f"  device types ({len(process.device_types)}):")
    for device_type in sorted(process.device_types, key=lambda d: d.name):
        print(
            f"    {device_type.name:12s} {device_type.width:6.1f} x "
            f"{device_type.height:5.1f} lambda  [{device_type.kind.value}]"
        )


def _cmd_process_export(args) -> None:
    process = _resolve_process(args)
    path = save_process_file(process, args.output)
    print(f"process {process.name} written to {path}")


def _cmd_table1(args) -> None:
    from repro.experiments.table1 import format_table1, run_table1

    print(format_table1(run_table1(jobs=args.jobs)))


def _cmd_table2(args) -> None:
    from repro.experiments.table2 import format_table2, run_table2

    print(format_table2(run_table2(jobs=args.jobs)))


def _cmd_central_row(args) -> None:
    del args
    from repro.experiments.central_row import (
        format_central_row,
        run_central_row_experiment,
    )

    print(format_central_row(run_central_row_experiment()))


def _cmd_pipeline(args) -> None:
    del args
    from repro.experiments.pipeline import (
        format_pipeline,
        run_pipeline_experiment,
    )

    print(format_pipeline(run_pipeline_experiment()))


def _cmd_iterations(args) -> None:
    del args
    from repro.experiments.iterations import (
        format_iterations,
        run_iteration_experiment,
    )

    print(format_iterations(run_iteration_experiment()))


def _cmd_runtime(args) -> None:
    from repro.experiments.runtime import format_runtime, run_runtime_experiment

    trace_path = getattr(args, "trace", None)
    print(format_runtime(run_runtime_experiment(trace_path=trace_path)))
    if trace_path:
        print(f"trace written to {trace_path}")


def _cmd_pla(args) -> None:
    del args
    from repro.experiments.pla_linearity import (
        format_pla_linearity,
        run_pla_linearity,
    )

    observations, coefficients, r_squared = run_pla_linearity()
    print(format_pla_linearity(observations, coefficients, r_squared))


def _cmd_scaling(args) -> None:
    del args
    from repro.experiments.scaling import (
        format_scaling,
        run_scaling_experiment,
    )

    print(format_scaling(run_scaling_experiment()))


def _cmd_ablation(args) -> None:
    from repro.experiments import ablations

    if args.which == "sharing":
        print(ablations.format_track_sharing(
            ablations.run_track_sharing_ablation(jobs=args.jobs)
        ))
    elif args.which == "rows":
        print(ablations.format_row_sweep(
            ablations.run_row_sweep(jobs=args.jobs)
        ))
    else:
        print(ablations.format_oracle_quality(
            ablations.run_oracle_quality_ablation(jobs=args.jobs)
        ))


def _cmd_bench(args) -> None:
    from repro.errors import BenchmarkError
    from repro.perf.bench import (
        format_bench_record,
        load_bench_record,
        run_bench,
        write_bench_record,
    )

    record = run_bench(
        jobs=args.jobs, smoke=args.smoke,
        portfolio_modules=args.portfolio_modules,
    )
    path = write_bench_record(record, args.output)
    record = load_bench_record(path)
    print(format_bench_record(record))
    print(f"trajectory record written to {path}")
    if args.assert_plan_speedup is not None:
        ratio = record["speedups"]["synthetic_plan_vs_batch_jobs1"]
        if ratio < args.assert_plan_speedup:
            raise BenchmarkError(
                f"plan path speedup {ratio:.2f}x is below the "
                f"required {args.assert_plan_speedup:.2f}x"
            )
        print(
            f"plan path speedup {ratio:.2f}x meets the required "
            f"{args.assert_plan_speedup:.2f}x"
        )
    if args.assert_incremental_speedup is not None:
        ratio = record["speedups"]["incremental_vs_rebuild"]
        if ratio < args.assert_incremental_speedup:
            raise BenchmarkError(
                f"incremental ECO speedup {ratio:.2f}x is below the "
                f"required {args.assert_incremental_speedup:.2f}x"
            )
        print(
            f"incremental ECO speedup {ratio:.2f}x meets the required "
            f"{args.assert_incremental_speedup:.2f}x"
        )
    if args.assert_backend_speedup is not None:
        ratio = record["speedups"].get("backend_numpy_vs_exact_sweep")
        if ratio is None:
            raise BenchmarkError(
                "cannot assert backend speedup: the numpy backend was "
                "not available for this bench run"
            )
        if ratio < args.assert_backend_speedup:
            raise BenchmarkError(
                f"numpy backend sweep speedup {ratio:.2f}x is below the "
                f"required {args.assert_backend_speedup:.2f}x"
            )
        print(
            f"numpy backend sweep speedup {ratio:.2f}x meets the "
            f"required {args.assert_backend_speedup:.2f}x"
        )
    if args.assert_serve_throughput is not None:
        rate = record["serve"]["estimates_per_sec"]
        if rate < args.assert_serve_throughput:
            raise BenchmarkError(
                f"serve throughput {rate:.1f} estimates/sec is below "
                f"the required {args.assert_serve_throughput:.1f}"
            )
        print(
            f"serve throughput {rate:.1f} estimates/sec meets the "
            f"required {args.assert_serve_throughput:.1f}"
        )
    if args.assert_portfolio_speedup is not None:
        ratio = record["speedups"]["floorplan_portfolio_vs_serial"]
        if ratio < args.assert_portfolio_speedup:
            raise BenchmarkError(
                f"floorplan portfolio speedup {ratio:.2f}x is below "
                f"the required {args.assert_portfolio_speedup:.2f}x"
            )
        print(
            f"floorplan portfolio speedup {ratio:.2f}x meets the "
            f"required {args.assert_portfolio_speedup:.2f}x"
        )
    if args.assert_congestion_overhead is not None:
        ratio = record["speedups"].get("floorplan_scored_overhead")
        if ratio is None:
            raise BenchmarkError(
                "cannot assert congestion overhead: this bench record "
                "has no routability-scored floorplan phase"
            )
        if ratio > args.assert_congestion_overhead:
            raise BenchmarkError(
                f"routability-scored sweep overhead {ratio:.2f}x is "
                f"above the allowed {args.assert_congestion_overhead:.2f}x"
            )
        print(
            f"routability-scored sweep overhead {ratio:.2f}x is within "
            f"the allowed {args.assert_congestion_overhead:.2f}x"
        )


def _cmd_floorplan(args) -> None:
    import json as json_module

    from repro.floorplan.portfolio import (
        SEARCHERS,
        PortfolioConfig,
        load_checkpoint,
        run_portfolio,
    )
    from repro.netlist.verilog import parse_verilog_library
    from repro.workloads.designs import design_from_modules, generate_design

    process = _resolve_process(args)
    if args.design.isdigit():
        design_seed = (
            args.design_seed if args.design_seed is not None else args.seed
        )
        design = generate_design(int(args.design), seed=design_seed)
    else:
        with open(args.design, "r", encoding="utf-8") as handle:
            text = handle.read()
        design = design_from_modules(
            parse_verilog_library(text, filename=args.design)
        )
    searchers = tuple(
        entry.strip()
        for entry in (args.portfolio or ",".join(SEARCHERS)).split(",")
        if entry.strip()
    )
    steps = args.steps or max(100, min(2 * design.module_count, 1200))
    config = PortfolioConfig(
        steps=steps,
        seed=args.seed,
        searchers=searchers,
        aspect_target=args.aspect_target,
        aspect_weight=args.aspect_weight,
        routability_weight=args.routability_weight,
        row_window=args.row_window,
        checkpoint_every=args.checkpoint_every,
        jobs=args.jobs,
        spot_checks=args.spot_checks,
    )
    resume = load_checkpoint(args.resume) if args.resume else None
    result = run_portfolio(
        design,
        process,
        config,
        engine="serial" if args.serial else "portfolio",
        resume=resume,
        checkpoint_path=args.checkpoint,
        stop_after=args.stop_after,
    )

    print(
        f"{result.engine} race over {result.module_count} modules of "
        f"{result.design_name!r}: {result.steps} steps x "
        f"{len(result.searchers)} searchers in {result.elapsed:.2f}s "
        f"({result.modules_per_sec:.0f} module-moves/sec)"
    )
    for name in sorted(result.searchers):
        summary = result.searchers[name]
        marker = " <- winner" if name == result.winner else ""
        print(
            f"  {name:10s} best cost {summary['best_cost']:.4g} at step "
            f"{summary['best_step']}, {summary['accepts']}/"
            f"{summary['moves']} accepts, {summary['wall_time']:.2f}s"
            f"{marker}"
        )
    chip = result.chip
    print(
        f"chip: {chip['width']:.0f} x {chip['height']:.0f} lambda, "
        f"utilization {chip['utilization']:.0%}, "
        f"global HPWL {chip['hpwl']:.0f} lambda"
    )
    if result.spot_checks:
        print(f"exact-backend spot checks passed: {result.spot_checks}")
    if args.checkpoint:
        print(f"checkpoint written to {args.checkpoint}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(result.to_dict(), handle, indent=2,
                             sort_keys=True)
            handle.write("\n")
        print(f"result record written to {args.json}")


def _cmd_serve(args) -> None:
    from repro.service.engine import EstimationEngine, ServiceConfig
    from repro.service.server import MAEServer, ROUTES

    engine = EstimationEngine(ServiceConfig(
        max_sessions=args.max_sessions,
        queue_limit=args.queue_limit,
        coalesce_limit=args.coalesce_limit,
        request_timeout=args.timeout,
        jobs=args.jobs,
    ))
    server = MAEServer(
        engine, host=args.host, port=args.port,
        max_inflight=args.max_inflight,
    )
    print(f"mae serve listening on {server.base_url}")
    for method, path, summary in ROUTES:
        print(f"  {method:6s} {path:24s} {summary}")
    print("Ctrl-C drains in-flight work and stops.")
    try:
        server.run_forever()
    except KeyboardInterrupt:
        print("\ndraining...")
        server.stop(drain=True)
    print("mae serve stopped")


def _cmd_eco(args) -> None:
    import dataclasses

    from repro.core.standard_cell import estimate_standard_cell_from_stats
    from repro.errors import VerificationError
    from repro.incremental import (
        IncrementalEstimator,
        edit_distance,
        generate_edit_sequence,
        load_mutations,
        save_mutations,
    )
    from repro.obs.explain import resolve_module

    process = _resolve_process(args)
    config = EstimatorConfig(rows=args.rows)
    module = resolve_module(args.module, process)

    if args.sample is not None:
        mutations = generate_edit_sequence(
            module, args.sample, seed=args.seed,
            power_nets=config.power_nets,
        )
        save_mutations(args.edits, mutations)
        print(f"{len(mutations)} random edit(s) written to {args.edits}")
    else:
        mutations = load_mutations(args.edits)

    engine = IncrementalEstimator(module, process, config)
    before = engine.estimate()
    print(
        f"module {module.name} before ECO: {before.rows} rows, "
        f"{before.tracks} tracks, "
        f"{format_area(before.area, process.lambda_um)}"
    )
    if args.step:
        for index, mutation in enumerate(mutations):
            estimate = engine.estimate_after(mutation)
            print(
                f"  [{index + 1:3d}] {mutation.kind:13s} -> "
                f"{estimate.rows} rows, {estimate.tracks} tracks, "
                f"area {estimate.area:.0f} lambda^2"
            )
        after = engine.estimate()
    else:
        after = engine.estimate_after(mutations)

    census = ", ".join(
        f"{count} {kind}" for kind, count in
        sorted(edit_distance(mutations).items())
    )
    print(f"applied {len(mutations)} edit(s): {census or 'none'}")
    stats = engine.statistics()
    print(
        f"module {module.name} after ECO (revision "
        f"{engine.stats_version}): {stats.device_count} devices, "
        f"{stats.net_count} nets; {after.rows} rows, {after.tracks} "
        f"tracks, {format_area(after.area, process.lambda_um)}"
    )
    delta = after.area - before.area
    print(f"area delta: {delta:+.0f} lambda^2 "
          f"({delta / before.area:+.1%})")

    if not args.no_verify:
        fresh = engine.rescan()
        rebuilt = estimate_standard_cell_from_stats(fresh, process, config)
        if (engine.statistics() != fresh
                or dataclasses.astuple(after) !=
                dataclasses.astuple(rebuilt)):
            raise VerificationError(
                "incremental estimate diverges from a from-scratch "
                "rescan of the edited netlist"
            )
        print("verified: incremental result is bit-identical to a "
              "from-scratch rescan")


def _cmd_verify(args) -> None:
    from contextlib import nullcontext

    from repro.errors import VerificationError
    from repro.verify import (
        VerifyOptions,
        load_records,
        perturbed_backend,
        perturbed_standard_cell,
        replay_records,
        run_verify,
        save_records,
    )

    if args.replay is not None:
        records = load_records(args.replay)
        if not records:
            print(f"{args.replay}: no records to replay")
            return
        reproduced = 0
        for record, result in replay_records(records):
            status = "still failing" if not result.passed else "fixed"
            if not result.passed:
                reproduced += 1
            print(f"  {record.spec.label}: {record.check} {status}"
                  + (f" ({result.detail})" if result.detail else ""))
        print(f"replayed {len(records)} record(s): {reproduced} still "
              f"failing, {len(records) - reproduced} fixed")
        if reproduced:
            raise VerificationError(
                f"{reproduced} replayed failure(s) still reproduce"
            )
        return

    options = VerifyOptions(
        seeds=args.seeds,
        base_seed=args.base_seed,
        jobs=args.jobs,
        check_envelope=not args.skip_envelope,
        checks=tuple(args.checks) if args.checks else None,
    )
    injection = (
        perturbed_standard_cell(args.inject)
        if args.inject is not None
        else nullcontext()
    )
    # The estimator perturbation trips plan_vs_direct; the backend
    # perturbation trips backend_equivalence — inject both so every
    # gate's alarm is exercised.
    backend_injection = (
        perturbed_backend(args.inject)
        if args.inject is not None
        else nullcontext()
    )
    with injection, backend_injection:
        report = run_verify(options)

    for name, counts in sorted(report.check_counts.items()):
        total = counts["passed"] + counts["failed"]
        marker = "ok " if counts["failed"] == 0 else "FAIL"
        print(f"  {marker} {name}: {counts['passed']}/{total}")
    for methodology, summary in report.envelope_summary.items():
        if not summary["cases"]:
            continue
        print(
            f"  envelope[{methodology}]: {summary['cases']} cases, error "
            f"{summary['min_error']:+.3f}..{summary['max_error']:+.3f} "
            f"(bounds {summary['bounds']['low']:+.2f}.."
            f"{summary['bounds']['high']:+.2f}), "
            f"{summary['violations']} violation(s)"
        )
    if report.congestion_summary.get("cases"):
        summary = report.congestion_summary
        print(
            f"  congestion: {summary['cases']} cases, total error "
            f"{summary['min_total_error']:+.3f}.."
            f"{summary['max_total_error']:+.3f}, shape error <= "
            f"{summary['max_shape_error']:.3f}, "
            f"{summary['violations']} violation(s)"
        )
    print(f"gates: " + ", ".join(
        f"{stage}={'pass' if ok else 'FAIL'}"
        for stage, ok in report.gates.items()
    ))

    if args.report is not None:
        path = report.save(args.report)
        print(f"report written to {path}")
    if args.backend_report is not None:
        from repro.perf.backends import get_backend
        from repro.technology import cmos_process, nmos_process
        from repro.verify import (
            draw_corpus,
            measure_backend_envelope,
            save_backend_envelope,
        )

        if not get_backend("numpy").available:
            raise VerificationError(
                "--backend-report needs the numpy backend "
                "(pip install repro[perf])"
            )
        envelope = measure_backend_envelope(
            draw_corpus(args.seeds, args.base_seed),
            {"standard-cell": cmos_process(),
             "full-custom": nmos_process()},
        )
        save_backend_envelope(envelope, args.backend_report)
        summary = envelope["summary"]
        print(
            f"backend envelope written to {args.backend_report}: "
            f"{summary['cases']} cases, max spread error "
            f"{summary['max_spread_error']:.3e}, max mean error "
            f"{summary['max_mean_error']:.3e}, "
            f"{summary['violations']} violation(s)"
        )
    if args.congestion_report is not None:
        from repro.technology import cmos_process
        from repro.verify import (
            draw_corpus,
            measure_congestion_envelope,
            save_congestion_envelope,
        )

        envelope = measure_congestion_envelope(
            draw_corpus(args.seeds, args.base_seed), cmos_process()
        )
        save_congestion_envelope(envelope, args.congestion_report)
        summary = envelope["summary"]
        print(
            f"congestion envelope written to {args.congestion_report}: "
            f"{summary['cases']} cases, total error "
            f"{summary['min_total_error']:+.3f}.."
            f"{summary['max_total_error']:+.3f}, max shape error "
            f"{summary['max_shape_error']:.3f}, "
            f"{summary['violations']} violation(s)"
        )
    if report.failures:
        records_path = args.records or "VERIFY_failures.json"
        save_records(records_path, report.failures)
        print(f"{len(report.failures)} failing seed record(s) written to "
              f"{records_path}")
        for record in report.failures[:5]:
            shrunk = (
                f", shrunk to {record.shrunk_device_count} device(s)"
                if record.shrunk_device_count is not None
                else ""
            )
            print(f"  {record.spec.label}: {record.check}{shrunk}")

    if args.inject is not None:
        if report.passed:
            raise VerificationError(
                f"injected perturbation x{args.inject} was NOT caught — "
                "the harness is blind"
            )
        print(f"injected perturbation x{args.inject} caught as expected")
        return
    if not report.passed:
        raise VerificationError(
            "verification failed: "
            + ", ".join(s for s, ok in report.gates.items() if not ok)
        )
    print(f"verify: {len(report.cases)} cases, all gates passed")


def _cmd_synth(args) -> None:
    import json

    from repro.frontend.yosys import find_yosys, run_yosys_flow

    binary = find_yosys(args.yosys)
    if binary is None:
        if args.require:
            from repro.errors import FrontendError

            raise FrontendError(
                "no yosys binary found and --require was given"
            )
        print("yosys not found — skipping synthesis (install yosys, "
              "set $MAE_YOSYS, or pass --yosys BIN)")
        return
    result = run_yosys_flow(
        args.verilog, args.liberty,
        top=args.top, blif_out=args.blif_out, yosys_bin=args.yosys,
    )
    print(f"top module {result.top}: chip area "
          f"{result.chip_area_um2:g} um^2 (stat -liberty)")
    if args.pdn_margin is not None:
        print(f"with x{args.pdn_margin:g} PDN/overhead margin: "
              f"{result.chip_area_um2 * args.pdn_margin:g} um^2")
    for cell, count in result.cell_counts:
        print(f"  {count:6d}  {cell}")
    if result.blif_path:
        print(f"mapped BLIF written to {result.blif_path}")
    if args.json is not None:
        record = result.to_dict()
        if args.pdn_margin is not None:
            record["pdn_margin"] = args.pdn_margin
            record["chip_area_with_margin_um2"] = (
                result.chip_area_um2 * args.pdn_margin
            )
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"synthesis record written to {args.json}")


def _cmd_calibrate(args) -> None:
    from repro.frontend.calibrate import (
        DEFAULT_PDN_MARGIN,
        DEFAULT_SLACK,
        default_envelope_path,
        measure_frontend_envelope,
        save_frontend_envelope,
    )

    record = measure_frontend_envelope(
        root=args.fixtures,
        pdn_margin=(args.pdn_margin if args.pdn_margin is not None
                    else DEFAULT_PDN_MARGIN),
        slack=args.slack if args.slack is not None else DEFAULT_SLACK,
    )
    path = args.report or str(default_envelope_path())
    save_frontend_envelope(record, path)
    bounds = record["bounds"]
    print(f"library {record['library']}: fitted correction factor "
          f"{record['factor']:.6f} over {record['summary']['cases']} "
          f"golden design(s), pdn margin x{record['pdn_margin']:g}")
    for case in record["cases"]:
        print(f"  {case['design']:>16}: {case['devices']:3d} devices, "
              f"residual {case['residual']:+.4f}")
    print(f"stated accuracy band: {bounds['low']:+.4f}.."
          f"{bounds['high']:+.4f} (slack {record['slack']:g})")
    print(f"frontend envelope written to {path}")
    print("gate it with: mae verify --skip-envelope "
          "--check frontend_accuracy")


if __name__ == "__main__":
    sys.exit(main())
