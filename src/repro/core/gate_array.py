"""Gate-array area estimation (extension).

Section 1 names three popular methodologies — Full-Custom,
Standard-Cell, and Gate Array — and covers the first two; "the
remaining methodologies and Gate Arrays are not covered here".  This
module adds the third, so the floorplanner can weigh all three, using
the same statistics scan as the paper's estimators.

Model
-----
A gate array is a prediffused die of identical *sites* arranged in
rows, with fixed-capacity routing channels between site rows.  Mapping
a netlist onto it:

* every device consumes ``site_equivalents(cell)`` sites — gates map by
  transistor-pair count (a site is one 2-transistor pair cell);
* the routing channels have a *fixed* number of tracks per channel.
  The design's expected track demand per channel (from the same
  probability model as Eq. 3, or the analytic sharing model) must fit;
  if it does not, the array must be *under-utilised*: rows are added
  (spreading the logic) until per-channel demand fits the capacity.
  This is the classic gate-array utilisation wall.

The estimate reports the chosen array (rows x columns), the achieved
utilisation, and the die area.  Unlike standard cells, the array
height does not grow with track demand — the channel capacity is
fixed at fabrication, which is exactly the trade-off that made gate
arrays cheap but area-hungry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import EstimatorConfig
from repro.core.sharing import estimate_shared_tracks
from repro.errors import EstimationError
from repro.netlist.model import Module
from repro.netlist.stats import ModuleStatistics, scan_module
from repro.technology.process import DeviceKind, ProcessDatabase
from repro.units import normalized_aspect

#: Site equivalents by pin count: a 2-input gate is one site, larger
#: gates and storage elements consume proportionally more.
_SITES_BY_PINS = {1: 1, 2: 1, 3: 2, 4: 3, 5: 4}
_SITES_SEQUENTIAL = 4  # flip-flops / latches


@dataclass(frozen=True)
class GateArraySpec:
    """Geometry of one prediffused array family."""

    site_width: float = 16.0        # lambda
    site_height: float = 40.0       # lambda (one site row)
    channel_tracks: int = 10        # fixed tracks per routing channel
    track_pitch: float = 7.0
    max_rows: int = 128

    def __post_init__(self) -> None:
        if self.site_width <= 0 or self.site_height <= 0:
            raise EstimationError("site dimensions must be positive")
        if self.channel_tracks < 1:
            raise EstimationError("channel_tracks must be >= 1")
        if self.max_rows < 1:
            raise EstimationError("max_rows must be >= 1")

    @property
    def row_pitch(self) -> float:
        """One site row plus its channel."""
        return self.site_height + self.channel_tracks * self.track_pitch


@dataclass(frozen=True)
class GateArrayEstimate:
    """A gate-array mapping of one module."""

    module_name: str
    rows: int
    columns: int
    sites_used: int
    sites_total: int
    demand_tracks_per_channel: int
    capacity_tracks_per_channel: int
    width: float
    height: float
    area: float

    @property
    def utilization(self) -> float:
        if self.sites_total == 0:
            return 0.0
        return self.sites_used / self.sites_total

    @property
    def aspect_ratio(self) -> float:
        return self.width / self.height

    @property
    def normalized_aspect(self) -> float:
        return normalized_aspect(self.width, self.height)

    @property
    def routing_limited(self) -> bool:
        """True when channel capacity (not site count) set the size."""
        return self.demand_tracks_per_channel >= (
            self.capacity_tracks_per_channel
        )


def site_equivalents(module: Module, process: ProcessDatabase) -> int:
    """Total sites the module's devices consume."""
    total = 0
    for device in module.devices:
        device_type = process.device_type(device.cell)
        if device_type.kind is DeviceKind.TRANSISTOR:
            # Two transistors share one site pair.
            total += 1
            continue
        name = device.cell.upper()
        if name.startswith(("DFF", "DLATCH")):
            total += _SITES_SEQUENTIAL
        else:
            inputs = max(1, device_type.pin_count - 1)
            total += _SITES_BY_PINS.get(inputs, inputs - 1)
    return total


def estimate_gate_array(
    module: Module,
    process: ProcessDatabase,
    spec: Optional[GateArraySpec] = None,
    config: Optional[EstimatorConfig] = None,
) -> GateArrayEstimate:
    """Map a module onto the smallest feasible gate array.

    Rows grow from the near-square count until (a) all sites fit and
    (b) the per-channel track demand fits the fixed channel capacity.
    """
    spec = spec or GateArraySpec()
    config = config or EstimatorConfig()
    if module.device_count == 0:
        raise EstimationError(
            f"module {module.name!r}: cannot estimate an empty module"
        )

    stats = scan_module(
        module,
        device_width=process.device_width,
        device_height=process.device_height,
        port_width=config.port_pitch_override or process.port_pitch,
        power_nets=config.power_nets,
    )
    sites = site_equivalents(module, process)

    rows = max(1, round(math.sqrt(
        sites * spec.site_width / spec.row_pitch
    )))
    while rows <= spec.max_rows:
        columns = math.ceil(sites / rows)
        demand = _per_channel_demand(stats, rows, config)
        if demand <= spec.channel_tracks:
            return _build_estimate(
                stats.module_name, spec, rows, columns, sites, demand
            )
        rows += 1
    raise EstimationError(
        f"module {stats.module_name!r}: routing demand exceeds channel "
        f"capacity even at {spec.max_rows} rows; use a richer array "
        "(raise channel_tracks) or a channelled methodology"
    )


def compare_methodologies(
    module: Module,
    process: ProcessDatabase,
    spec: Optional[GateArraySpec] = None,
    config: Optional[EstimatorConfig] = None,
) -> Dict[str, float]:
    """Areas under all three methodologies (gate-level modules).

    Returns {methodology: area}; full-custom requires a transistor
    expansion and is included only when every cell is expandable.
    """
    from repro.core.standard_cell import estimate_standard_cell
    from repro.errors import NetlistError
    from repro.workloads.generators import expand_to_transistors

    areas: Dict[str, float] = {}
    areas["standard-cell"] = estimate_standard_cell(
        module, process, config
    ).area
    areas["gate-array"] = estimate_gate_array(
        module, process, spec, config
    ).area
    try:
        from repro.core.full_custom import estimate_full_custom

        transistor_level = expand_to_transistors(module)
        areas["full-custom"] = estimate_full_custom(
            transistor_level, process, config
        ).area
    except NetlistError:
        pass  # cells without an nMOS expansion: skip full-custom
    return areas


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _per_channel_demand(
    stats: ModuleStatistics, rows: int, config: EstimatorConfig
) -> int:
    shared = estimate_shared_tracks(
        stats.multi_component_nets,
        rows,
        config.congestion_margin,
        config.row_spread_mode,
    )
    return shared.tracks_per_channel


def _build_estimate(
    name: str,
    spec: GateArraySpec,
    rows: int,
    columns: int,
    sites: int,
    demand: int,
) -> GateArrayEstimate:
    width = columns * spec.site_width
    height = rows * spec.row_pitch
    return GateArrayEstimate(
        module_name=name,
        rows=rows,
        columns=columns,
        sites_used=sites,
        sites_total=rows * columns,
        demand_tracks_per_channel=demand,
        capacity_tracks_per_channel=spec.channel_tracks,
        width=width,
        height=height,
        area=width * height,
    )
