"""Analytic track-sharing model (the paper's Section 7 future work).

"In the future ... the estimator will be changed to account for
routing channel track sharing in Standard-Cell layouts."  This module
implements that change, staying within the paper's
probability-of-placement framework:

* A net with D components spread over E(i) rows (Eq. 3) places a trunk
  in roughly ``max(ceil(E(i)) - 1, 1)`` channels.
* Given D points uniform on a row of unit length, the expected extent
  of their span is (D - 1)/(D + 1); a trunk therefore *covers* a
  uniformly chosen column of its channel with that probability.
* Summing coverage over all nets and dividing by the channel count
  gives the expected column density per channel.  Peak density (what a
  router must provide as tracks) exceeds the mean; a configurable
  ``congestion_margin`` (default 1.25) scales mean to peak.

The resulting track count replaces the paper's one-net-per-track upper
bound (Eq. 3's ``sum y_D * ceil(E(i))``), moving the Table 2 area
estimates from a ~2x overestimate to roughly router-accurate — the A1
benchmark quantifies this against routed layouts.

This stays an *estimate*: no placement is consulted, only the same
(D, y_D) histogram the rest of the estimator uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.core.probability import total_expected_tracks
from repro.errors import EstimationError
from repro.perf.kernels import expected_row_spread
from repro.units import round_up


@dataclass(frozen=True)
class SharedTrackEstimate:
    """Outcome of the analytic sharing model."""

    channels: int
    mean_density: float          # expected nets covering a column
    tracks_per_channel: int      # with the congestion margin applied
    total_tracks: int

    @property
    def sharing_factor_equivalent(self) -> float:
        """The ``track_sharing_factor`` this estimate corresponds to,
        relative to a given upper bound (set by the caller via
        :func:`equivalent_sharing_factor`)."""
        return float("nan")


def expected_span_fraction(components: int) -> float:
    """Expected extent of D uniform points on a unit row: (D-1)/(D+1).

    This is the classic order-statistics result E[max - min] for D
    i.i.d. uniforms; for D = 2 it is 1/3, approaching 1 as D grows.
    """
    if components < 1:
        raise EstimationError(
            f"components must be >= 1, got {components}"
        )
    if components == 1:
        return 0.0
    return (components - 1) / (components + 1)


def expected_channels_for_net(components: int, rows: int,
                              mode: str = "paper") -> int:
    """Channels a D-component net's trunks occupy.

    A net spread over r rows needs trunks in the r - 1 channels between
    them (feed-through insertion makes the occupied rows consecutive);
    a single-row net still uses one channel.
    """
    if components <= 1:
        return 0
    spread = round_up(expected_row_spread(components, rows, mode))
    return max(spread - 1, 1)


def estimate_shared_tracks(
    net_size_histogram: Sequence[Tuple[int, int]],
    rows: int,
    congestion_margin: float = 1.25,
    mode: str = "paper",
) -> SharedTrackEstimate:
    """Expected routed track count for a module.

    ``net_size_histogram`` is the scanner's (D, y_D) pairs; ``rows``
    the standard-cell row count (so there are rows + 1 channels).
    """
    if rows < 1:
        raise EstimationError(f"rows must be >= 1, got {rows}")
    if congestion_margin < 1.0:
        raise EstimationError(
            f"congestion_margin must be >= 1, got {congestion_margin}"
        )
    channels = rows + 1

    coverage = 0.0
    for components, count in net_size_histogram:
        if count < 0:
            raise EstimationError(
                f"negative net count for D={components}"
            )
        if components <= 1:
            continue
        trunk_channels = expected_channels_for_net(components, rows, mode)
        # Pins facing one channel come from the two adjacent rows; the
        # trunk's span is governed by the components that landed there.
        # Using the full D is conservative (a trunk never spans more
        # than the whole net does).
        coverage += count * trunk_channels * expected_span_fraction(
            components
        )

    mean_density = coverage / channels
    tracks_per_channel = max(1, math.ceil(mean_density * congestion_margin))
    if coverage == 0.0:
        tracks_per_channel = 0
    # Sharing can only reduce the one-net-per-track count: the
    # per-channel ceiling can otherwise overshoot on degenerate
    # few-row modules.
    upper_bound = total_expected_tracks(net_size_histogram, rows, mode)
    total = min(tracks_per_channel * channels, upper_bound)
    return SharedTrackEstimate(
        channels=channels,
        mean_density=mean_density,
        tracks_per_channel=tracks_per_channel,
        total_tracks=total,
    )


def equivalent_sharing_factor(
    shared_tracks: int, upper_bound_tracks: int
) -> float:
    """The ``EstimatorConfig.track_sharing_factor`` that would produce
    the analytic model's track count from the Eq. 3 upper bound."""
    if upper_bound_tracks <= 0:
        raise EstimationError(
            f"upper bound tracks must be positive, got {upper_bound_tracks}"
        )
    if shared_tracks < 0:
        raise EstimationError(
            f"shared tracks must be >= 0, got {shared_tracks}"
        )
    return min(1.0, max(shared_tracks / upper_bound_tracks, 1e-9))
