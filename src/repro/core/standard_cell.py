"""Standard-cell module area estimation (Section 4.1, Eqs. 1-12).

The estimate proceeds exactly as the paper's derivation:

1. Scan the schematic for N, H, the width histogram (W_i, X_i) and the
   net-size histogram (D, y_D); compute W_avg (Eq. 1).
2. Choose the number of rows n — either fixed by the caller or by the
   Section 5 port-fitting algorithm.
3. Expected total track count: for every net size D, the expected row
   spread E(i) (Eqs. 2-3) rounded up, times y_D nets of that size.
4. Expected feed-throughs in a row: each net straddles the central row
   with probability P (Eq. 9, or Eq. 8 for the general model); the
   count over H nets is binomial with mean H*P (Eqs. 10-11), rounded
   up.  Every row is assumed to carry this (worst-case central-row)
   feed-through load.
5. Module area (Eq. 12)::

       area = (n * row_height + tracks * track_pitch)
            * (W_avg * N / n + E(M) * feedthrough_width)

The result is an upper bound: "each routing track only contains one
signal net" ignores track sharing, which the paper identifies as the
source of its 42-70 % Table 2 overestimates.  ``track_sharing_factor``
in the config scales the track count for the A1 ablation.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.core.config import EstimatorConfig
from repro.core.probability import expected_feedthroughs
from repro.obs.trace import current_tracer
from repro.perf.backends import current_backend
from repro.perf.kernels import central_feedthrough_probability
from repro.core.results import StandardCellEstimate
from repro.errors import EstimationError
from repro.netlist.model import Module
from repro.netlist.stats import ModuleStatistics, scan_module
from repro.technology.process import ProcessDatabase
from repro.units import round_up


def estimate_standard_cell(
    module: Module,
    process: ProcessDatabase,
    config: Optional[EstimatorConfig] = None,
) -> StandardCellEstimate:
    """Estimate standard-cell layout area for a module."""
    config = config or EstimatorConfig()
    tracer = current_tracer()
    with tracer.span("scan") as span:
        stats = scan_module(
            module,
            device_width=process.device_width,
            device_height=process.device_height,
            port_width=config.port_pitch_override or process.port_pitch,
            power_nets=config.power_nets,
        )
        if tracer.enabled:
            span.set("module", stats.module_name)
            span.set("devices", stats.device_count)
            span.set("nets", stats.net_count)
            tracer.metrics.incr("scan.modules")
    return estimate_standard_cell_from_stats(stats, process, config)


def estimate_standard_cell_from_stats(
    stats: ModuleStatistics,
    process: ProcessDatabase,
    config: Optional[EstimatorConfig] = None,
) -> StandardCellEstimate:
    """Estimate from pre-computed statistics (workload sweeps reuse the
    scan across row counts)."""
    config = config or EstimatorConfig()
    if stats.device_count == 0:
        raise EstimationError(
            f"module {stats.module_name!r}: cannot estimate an empty module"
        )

    tracer = current_tracer()
    with tracer.span("sc.estimate") as span:
        rows = config.rows if config.rows is not None else choose_initial_rows(
            stats, process, config
        )
        if rows < 1:
            raise EstimationError(f"row count must be >= 1, got {rows}")

        tracks, per_size = _expected_tracks(stats, rows, config)
        feedthroughs = _expected_feedthroughs(stats, rows, config)

        cell_width_per_row = stats.average_width * stats.device_count / rows
        feedthrough_width = feedthroughs * process.feedthrough_width
        width = cell_width_per_row + feedthrough_width
        height = rows * process.row_height + tracks * process.track_pitch
        area = width * height
        cell_area = stats.total_device_area

        if tracer.enabled:
            span.set("module", stats.module_name)
            span.set("rows", rows)
            span.set("tracks", tracks)
            span.set("feedthroughs", feedthroughs)
            metrics = tracer.metrics
            metrics.incr("sc.estimates")
            metrics.incr("sc.nets_routed", stats.routed_net_count)
            metrics.incr("sc.tracks_total", tracks)
            metrics.incr("sc.feedthroughs_total", feedthroughs)

    return StandardCellEstimate(
        module_name=stats.module_name,
        rows=rows,
        cell_width_per_row=cell_width_per_row,
        feedthroughs=feedthroughs,
        feedthrough_width=feedthrough_width,
        tracks=tracks,
        tracks_by_net_size=tuple(per_size),
        width=width,
        height=height,
        cell_area=cell_area,
        wiring_area=max(0.0, area - cell_area),
        area=area,
    )


def sweep_rows(
    module: Module,
    process: ProcessDatabase,
    row_counts: Tuple[int, ...],
    config: Optional[EstimatorConfig] = None,
    jobs: int = 1,
    backend: Optional[str] = None,
) -> List[StandardCellEstimate]:
    """Estimates at several row counts (the paper shows 2-3 per module
    in Table 2; "the area estimate decreased as the number of rows
    increased").

    ``jobs`` > 1 fans the row counts across the batch executor's
    process pool; results are identical and in ``row_counts`` order
    either way.  ``backend`` selects the kernel evaluation backend
    (``None``: the process default) — under ``numpy`` the whole sweep
    is one 2-D (rows x net-size) kernel evaluation.
    """
    # Deferred: repro.perf.batch imports this module.
    from repro.perf.batch import estimate_batch

    config = config or EstimatorConfig()
    results = estimate_batch(
        [module],
        process,
        [config.with_rows(rows) for rows in row_counts],
        methodologies=("standard-cell",),
        jobs=jobs,
        backend=backend,
    )
    return [result.estimate for result in results]


def choose_initial_rows(
    stats: ModuleStatistics,
    process: ProcessDatabase,
    config: Optional[EstimatorConfig] = None,
) -> int:
    """The Section 5 initial-row algorithm.

    Starting from i = 2::

        n = ceil( sqrt(active_cell_area) / (i * row_height) )
        row_length = active_cell_area / (n * row_height)

    accept n once all module ports fit within ``row_length`` (ports fit
    along one of the longer edges), otherwise increment i — fewer,
    longer rows.  n = 1 is always accepted: rows cannot get any longer.
    """
    config = config or EstimatorConfig()
    area = stats.total_device_area
    if area <= 0:
        raise EstimationError(
            f"module {stats.module_name!r}: active cell area must be positive"
        )
    row_height = process.row_height
    port_length = stats.total_port_width

    tracer = current_tracer()
    with tracer.span("sc.choose_rows") as span:
        divisor = 2
        iterations = 0
        while True:
            rows = math.ceil(math.sqrt(area) / (divisor * row_height))
            rows = max(1, min(rows, config.max_rows))
            row_length = area / (rows * row_height)
            if rows == 1 or port_length <= row_length:
                if tracer.enabled:
                    span.set("rows", rows)
                    span.set("iterations", iterations)
                    tracer.metrics.incr("sc.row_iterations", iterations)
                return rows
            divisor += 1
            iterations += 1
            if iterations > 10_000:  # unreachable: rows -> 1 as divisor grows
                raise EstimationError(
                    f"module {stats.module_name!r}: row selection did not "
                    "converge"
                )


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _expected_tracks(
    stats: ModuleStatistics,
    rows: int,
    config: EstimatorConfig,
) -> Tuple[int, List[Tuple[int, int]]]:
    tracer = current_tracer()
    with tracer.span("sc.tracks") as span:
        histogram = stats.multi_component_nets
        # One backend call covers the whole histogram (under ``exact``,
        # a cache hit returns every net size's Eq. 3 demand in a single
        # lookup; under ``numpy``, one vectorized array pass).
        per_net = current_backend().tracks_for_histogram(
            histogram, rows, config.row_spread_mode
        )
        per_size: List[Tuple[int, int]] = []
        total = 0
        for (components, count), tracks in zip(histogram, per_net):
            per_size.append((components, tracks))
            total += tracks * count
        if config.track_model == "shared":
            # Section 7 future work: the analytic expected-density model.
            from repro.core.sharing import estimate_shared_tracks

            shared = estimate_shared_tracks(
                stats.multi_component_nets,
                rows,
                config.congestion_margin,
                config.row_spread_mode,
            ).total_tracks
            # The upper bound stays an upper bound.
            shared = min(shared, total)
        else:
            shared = math.ceil(total * config.track_sharing_factor)
        if tracer.enabled:
            span.set("raw_tracks", total)
            span.set("tracks", shared)
            tracer.metrics.incr(
                "sc.track_nets", stats.routed_net_count
            )
    return shared, per_size


def _expected_feedthroughs(
    stats: ModuleStatistics,
    rows: int,
    config: EstimatorConfig,
) -> int:
    tracer = current_tracer()
    with tracer.span("sc.feedthroughs") as span:
        if rows < 3:
            # No interior row exists; nothing can straddle a row.  The
            # span still reports its payload so traced 1- and 2-row
            # estimates are not empty.
            if tracer.enabled:
                span.set("mean", 0.0)
                span.set("feedthroughs", 0)
            return 0
        if config.feedthrough_model == "two-component":
            probability = central_feedthrough_probability(rows)
            count = expected_feedthroughs(
                stats.routed_net_count, probability
            )
            if tracer.enabled:
                span.set("mean", stats.routed_net_count * probability)
                span.set("feedthroughs", count)
            return count
        # General model: per net size D, Eq. 8 at the central row, the
        # whole histogram in one backend call.
        mean = current_backend().feedthrough_mean_for_histogram(
            stats.multi_component_nets, rows, "general"
        )
        count = round_up(mean)
        if tracer.enabled:
            span.set("mean", mean)
            span.set("feedthroughs", count)
            tracer.metrics.incr("feedthrough.mean_sum", mean)
        return count
