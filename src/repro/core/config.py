"""Estimator configuration.

Every modelling choice the paper leaves implicit — and every deliberate
deviation documented in DESIGN.md §3 — is a field here, defaulting to
the paper's published behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.errors import EstimationError
from repro.netlist.stats import DEFAULT_POWER_NETS

#: Net-span modes for the full-custom per-net area (Eq. 13):
#: "span" matches Table 1's footnote (two-component nets contribute no
#: wire area); "literal" implements the sentence of Section 4.2.
NET_SPAN_MODES = ("span", "literal")

#: Device-area modes for full-custom estimation: "exact" per-device
#: areas, "average" uses N * W_avg * h_avg (both columns of Table 1).
DEVICE_AREA_MODES = ("exact", "average")

FEEDTHROUGH_MODELS = ("two-component", "general")

#: Track models: "upper-bound" is the paper's one-net-per-track count
#: (optionally scaled by track_sharing_factor); "shared" is the
#: analytic expected-density model of repro.core.sharing, implementing
#: the paper's Section 7 future work.
TRACK_MODELS = ("upper-bound", "shared")


@dataclass(frozen=True)
class EstimatorConfig:
    """Knobs for both estimators.

    Attributes
    ----------
    rows:
        Standard-cell row count.  ``None`` (default) runs the Section 5
        initial-row algorithm driven by the port-length criterion.
    max_rows:
        Safety bound for the row-selection loop.
    row_spread_mode:
        ``"paper"`` (Eq. 2 with exponent k = min(n, D), renormalised) or
        ``"exact"`` (true multinomial).
    feedthrough_model:
        ``"two-component"`` uses Eq. 9's P = (n-1)^2/(2n^2) for every
        net (the paper's simplification); ``"general"`` evaluates Eq. 8
        per net size D.
    track_sharing_factor:
        Multiplier (0 < f <= 1) applied to the expected track count.
        1.0 reproduces the paper's "each routing track only contains
        one signal net" upper bound; the A1 ablation lowers it to model
        the track sharing the paper names as its overestimation cause.
    track_model:
        ``"upper-bound"`` (the paper) or ``"shared"`` — the analytic
        expected-density model of :mod:`repro.core.sharing`
        (Section 7 future work).  ``track_sharing_factor`` applies only
        to the upper-bound model.
    congestion_margin:
        Peak-over-mean channel density ratio for the shared model.
    net_span_mode / device_area_mode:
        Full-custom modelling choices, see module constants.
    port_pitch_override:
        Edge length per port in lambda; ``None`` uses the process value.
    power_nets:
        Net names excluded from routing statistics.
    max_aspect:
        The paper notes estimates are chosen "in the range from 1:1 to
        1:2"; the full-custom aspect algorithm widens beyond this only
        when ports demand it.
    """

    rows: Optional[int] = None
    max_rows: int = 64
    row_spread_mode: str = "paper"
    feedthrough_model: str = "two-component"
    track_sharing_factor: float = 1.0
    track_model: str = "upper-bound"
    congestion_margin: float = 1.25
    net_span_mode: str = "span"
    device_area_mode: str = "exact"
    port_pitch_override: Optional[float] = None
    power_nets: Tuple[str, ...] = DEFAULT_POWER_NETS
    max_aspect: float = 2.0

    def __post_init__(self) -> None:
        if self.rows is not None and self.rows < 1:
            raise EstimationError(f"rows must be >= 1, got {self.rows}")
        if self.max_rows < 1:
            raise EstimationError(f"max_rows must be >= 1, got {self.max_rows}")
        if self.row_spread_mode not in ("paper", "exact"):
            raise EstimationError(
                f"unknown row_spread_mode {self.row_spread_mode!r}"
            )
        if self.feedthrough_model not in FEEDTHROUGH_MODELS:
            raise EstimationError(
                f"unknown feedthrough_model {self.feedthrough_model!r}"
            )
        if not 0.0 < self.track_sharing_factor <= 1.0:
            raise EstimationError(
                "track_sharing_factor must be in (0, 1], got "
                f"{self.track_sharing_factor}"
            )
        if self.track_model not in TRACK_MODELS:
            raise EstimationError(
                f"unknown track_model {self.track_model!r} "
                f"(expected one of {TRACK_MODELS})"
            )
        if self.congestion_margin < 1.0:
            raise EstimationError(
                f"congestion_margin must be >= 1, got "
                f"{self.congestion_margin}"
            )
        if self.net_span_mode not in NET_SPAN_MODES:
            raise EstimationError(
                f"unknown net_span_mode {self.net_span_mode!r}"
            )
        if self.device_area_mode not in DEVICE_AREA_MODES:
            raise EstimationError(
                f"unknown device_area_mode {self.device_area_mode!r}"
            )
        if self.port_pitch_override is not None and self.port_pitch_override <= 0:
            raise EstimationError(
                "port_pitch_override must be positive, got "
                f"{self.port_pitch_override}"
            )
        if self.max_aspect < 1.0:
            raise EstimationError(
                f"max_aspect must be >= 1, got {self.max_aspect}"
            )

    def with_rows(self, rows: Optional[int]) -> "EstimatorConfig":
        """Copy with a fixed row count (row-sweep studies)."""
        return replace(self, rows=rows)

    def with_(self, **changes) -> "EstimatorConfig":
        """General copy-with-changes helper."""
        return replace(self, **changes)
