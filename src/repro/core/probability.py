"""Probabilistic placement models of Section 4.1.

Two questions drive the standard-cell estimate, both answered under the
assumption that each of a net's D components lands in one of n rows
uniformly and independently:

1. **Over how many rows does a net spread?**  (Eqs. 2-3.)  A net placed
   in i rows needs roughly i routing tracks (one per channel it
   touches), so the expected spread E(i) converts net sizes into track
   demand.

2. **Which row do feed-throughs hit, and how many are there?**
   (Eqs. 4-11.)  A net whose components straddle row i contributes one
   feed-through to row i.  The paper shows the central row
   i = (n+1)/2 maximises this probability, derives its limiting value
   1/2, and models the feed-through count as a binomial over the H nets.

Everything here is exact combinatorics on Python integers (no floating
subtraction of near-equal terms); Monte-Carlo simulators are provided so
property tests — and the S1 benchmark reproducing the paper's
"numerical simulation results" — can check the closed forms against
brute force.

The hot kernels (row-spread PMF, track demand, central feed-through
probability, surjection counts) are implemented and memoized in
:mod:`repro.perf.kernels`; the public functions here are thin wrappers
so every caller — estimator, sweep, batch engine — shares one
process-wide cache.  Results are bit-identical to the original
closed forms (the kernels perform the same arithmetic in the same
order).
"""

from __future__ import annotations

import math
import random
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

from repro.errors import EstimationError
from repro.obs.trace import current_tracer
from repro.perf import kernels as _kernels
from repro.units import round_up

#: Row-spread probability modes: the paper's Eq. 2 uses an exponent
#: k = min(n, D) which does not normalise when D > n; "exact" uses the
#: true multinomial exponent D.  They coincide whenever D <= n.
ROW_SPREAD_MODES = _kernels.ROW_SPREAD_MODES


# ----------------------------------------------------------------------
# Eq. 2: b[i] and the row-spread distribution
# ----------------------------------------------------------------------
def surjection_count(components: int, rows: int) -> int:
    """The paper's b[i]: ways to place D labelled components in exactly
    ``rows`` specific rows so no row is empty; equals
    ``i! * Stirling2(D, i)``.

    Computed from the iterative Stirling table of
    :func:`repro.perf.kernels.surjection_table` — one O(D * i) pass,
    no recursion, no ``rows**components`` big-integer powers.  The
    paper's literal recurrence survives as
    :func:`surjection_count_recurrence`, kept solely as a test oracle.
    """
    return _kernels.surjection_count(components, rows)


@lru_cache(maxsize=4096)
def surjection_count_recurrence(components: int, rows: int) -> int:
    """Test oracle: the paper's recurrence
    ``b[i] = i**D - sum_j C(i, j) * b[j]`` (inclusion-exclusion),
    evaluated literally.

    Recursion depth grows with ``rows`` and every level computes a
    ``rows**components`` power, so this is exponential-flavoured and
    raises ``RecursionError`` for large inputs — which is exactly why
    the estimator no longer uses it.  Property tests assert agreement
    with the iterative table for D, n <= 60.
    """
    _check_positive("components", components)
    _check_positive("rows", rows)
    if rows > components:
        return 0
    total = rows ** components
    for smaller in range(1, rows):
        total -= math.comb(rows, smaller) * surjection_count_recurrence(
            components, smaller
        )
    return total


def row_spread_pmf(
    components: int, rows: int, mode: str = "paper"
) -> Tuple[float, ...]:
    """P_rows(i) for i = 1..min(n, D): probability a D-component net
    occupies exactly i of the n rows (Eq. 2).

    ``mode="exact"`` uses the true multinomial denominator n**D (the
    distribution sums to 1 by construction).  ``mode="paper"`` uses the
    paper's exponent k = min(n, D) and renormalises, reproducing the
    published heuristic; the two agree exactly when D <= n.
    """
    return _kernels.row_spread_pmf(components, rows, mode)


def expected_row_spread(
    components: int, rows: int, mode: str = "paper"
) -> float:
    """E(i) of Eq. 3: expected number of rows a net's components occupy."""
    return _kernels.expected_row_spread(components, rows, mode)


def tracks_for_net(components: int, rows: int, mode: str = "paper") -> int:
    """Routing tracks demanded by one net: E(i) rounded up (Eq. 3).

    "One net needs at least one track"; a single-component net needs no
    routing at all and returns 0.
    """
    return _kernels.tracks_for_net(components, rows, mode)


def total_expected_tracks(
    net_size_histogram: Sequence[Tuple[int, int]],
    rows: int,
    mode: str = "paper",
) -> int:
    """Expectation value of the total track count over all nets.

    ``net_size_histogram`` is the scanner's (D, y_D) pairs; Eq. 3
    applied per distinct D, weighted by y_D.
    """
    tracer = current_tracer()
    with tracer.span("probability.total_tracks") as span:
        total = 0
        nets = 0
        for components, count in net_size_histogram:
            if count < 0:
                raise EstimationError(
                    f"net-size histogram has negative count for D={components}"
                )
            total += count * tracks_for_net(components, rows, mode)
            nets += count
        if tracer.enabled:
            span.set("nets", nets)
            span.set("tracks", total)
            tracer.metrics.incr("probability.track_evals")
    return total


# ----------------------------------------------------------------------
# Eqs. 4-8: feed-through probability per row
# ----------------------------------------------------------------------
def feedthrough_probability(
    components: int, rows: int, row: int
) -> float:
    """Probability a D-component net contributes a feed-through to the
    given row (Eq. 5 in closed form).

    A feed-through in ``row`` requires at least one component strictly
    above and at least one strictly below.  With per-component
    probabilities a = (row-1)/n above, b = (n-row)/n below, the paper's
    double sum over (l components in the row, j above, rest below)
    collapses by inclusion-exclusion to::

        P = 1 - (1 - a)**D - (1 - b)**D + (1/n)**D

    ``feedthrough_probability_paper_sum`` evaluates the published double
    sum literally; property tests assert the two agree.
    """
    return _kernels.feedthrough_probability(components, rows, row)


def feedthrough_probability_paper_sum(
    components: int, rows: int, row: int
) -> float:
    """Eq. 5 exactly as printed: sum over l in-row components and j
    components above the row."""
    _check_positive("components", components)
    _check_positive("rows", rows)
    if not 1 <= row <= rows:
        raise EstimationError(f"row {row} out of range 1..{rows}")
    if components < 2:
        return 0.0
    above = (row - 1) / rows
    below = (rows - row) / rows
    inside = 1.0 / rows
    total = 0.0
    for in_row in range(0, components - 1):          # l = 0 .. D-2
        remaining = components - in_row
        choose_in_row = math.comb(components, in_row) * inside ** in_row
        inner = 0.0
        for j in range(1, remaining):                # j = 1 .. D-l-1
            inner += (
                math.comb(remaining, j)
                * above ** j
                * below ** (remaining - j)
            )
        total += choose_in_row * inner
    return total


def central_row(rows: int) -> float:
    """The row index maximising feed-through probability: (n+1)/2 (Eq. 7)."""
    _check_positive("rows", rows)
    return (rows + 1) / 2


def feedthrough_argmax_row(components: int, rows: int) -> int:
    """Integer row with the highest feed-through probability.

    For even n the two middle rows tie (by symmetry); the lower index is
    returned.  The S1 benchmark sweeps this against the analytic
    (n+1)/2 claim.
    """
    best_row = 1
    best_probability = -1.0
    for row in range(1, rows + 1):
        probability = feedthrough_probability(components, rows, row)
        if probability > best_probability + 1e-15:
            best_probability = probability
            best_row = row
    return best_row


def central_feedthrough_probability(
    rows: int, components: int = 2, model: str = "two-component"
) -> float:
    """Feed-through probability at the central row.

    ``model="two-component"`` is the paper's simplification (Eq. 9):
    P = (n-1)^2 / (2 n^2), independent of D, with limit 1/2 as n grows.
    ``model="general"`` evaluates the closed form at i = (n+1)/2 for the
    actual D (Eq. 8); for even n it averages the two central rows.
    """
    return _kernels.central_feedthrough_probability(rows, components, model)


# ----------------------------------------------------------------------
# Eqs. 10-11: expected feed-through count in the central row
# ----------------------------------------------------------------------
def feedthrough_count_pmf(nets: int, probability: float) -> Tuple[float, ...]:
    """Eq. 10: P(M feed-throughs among H nets), M = 0..H (binomial)."""
    if nets < 0:
        raise EstimationError(f"net count must be >= 0, got {nets}")
    if not 0.0 <= probability <= 1.0:
        raise EstimationError(
            f"probability must be in [0, 1], got {probability}"
        )
    return tuple(
        math.comb(nets, m)
        * probability ** m
        * (1.0 - probability) ** (nets - m)
        for m in range(nets + 1)
    )


def expected_feedthroughs(nets: int, probability: float) -> int:
    """Eq. 11: E(M) rounded up to an integer.

    The binomial mean H*p equals the paper's explicit sum
    ``sum_M M * P[M]``; tests assert the identity.
    """
    if nets == 0:
        return 0
    mean = nets * probability
    tracer = current_tracer()
    if tracer.enabled:
        tracer.metrics.incr("feedthrough.evals")
        tracer.metrics.incr("feedthrough.mean_sum", mean)
    return round_up(mean)


# ----------------------------------------------------------------------
# Monte-Carlo oracles (for tests and the S1 benchmark)
# ----------------------------------------------------------------------
def simulate_row_spread(
    components: int,
    rows: int,
    trials: int,
    rng: Optional[random.Random] = None,
) -> List[float]:
    """Empirical row-spread PMF from random uniform placements."""
    _check_positive("trials", trials)
    rng = rng or random.Random(0)
    max_spread = min(rows, components)
    counts = [0] * max_spread
    for _ in range(trials):
        occupied = {rng.randrange(rows) for _ in range(components)}
        counts[len(occupied) - 1] += 1
    return [count / trials for count in counts]


def simulate_feedthrough_probability(
    components: int,
    rows: int,
    row: int,
    trials: int,
    rng: Optional[random.Random] = None,
) -> float:
    """Empirical probability that a random placement of a net straddles
    ``row`` (at least one component above and one below)."""
    _check_positive("trials", trials)
    rng = rng or random.Random(0)
    hits = 0
    for _ in range(trials):
        placement = [rng.randrange(1, rows + 1) for _ in range(components)]
        if any(p < row for p in placement) and any(p > row for p in placement):
            hits += 1
    return hits / trials


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _check_positive(label: str, value: int) -> None:
    if value < 1:
        raise EstimationError(f"{label} must be >= 1, got {value}")
