"""The estimator facade — Figure 1 of the paper.

``ModuleAreaEstimator`` ties the pieces of Fig. 1 together: the circuit
schematic (a parsed :class:`~repro.netlist.model.Module`), the
fabrication-process database, the two per-methodology estimators, and
the output record handed to the floor planner.

The paper reports per-module CPU time (< 1.5 s full-custom, < 3 s
standard-cell on a Sun 3/50); each estimate records its wall time so
the S2 benchmark can reproduce the "modest amount of computer time"
claim.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.core.config import EstimatorConfig
from repro.core.full_custom import estimate_full_custom_both
from repro.core.results import ModuleEstimate
from repro.core.standard_cell import estimate_standard_cell
from repro.errors import EstimationError
from repro.netlist.model import Module
from repro.netlist.spice import parse_spice
from repro.netlist.stats import scan_module
from repro.technology.process import ProcessDatabase


class ModuleAreaEstimator:
    """Estimate module area and aspect ratio for floor planning.

    >>> from repro.technology import nmos_process
    >>> estimator = ModuleAreaEstimator(nmos_process())
    >>> record = estimator.estimate(module)          # doctest: +SKIP
    >>> record.standard_cell.area                    # doctest: +SKIP
    """

    def __init__(
        self,
        process: ProcessDatabase,
        config: Optional[EstimatorConfig] = None,
    ):
        self.process = process
        self.config = config or EstimatorConfig()

    # ------------------------------------------------------------------
    # input interface (Fig. 1 left side)
    # ------------------------------------------------------------------
    def load_schematic(self, path: Union[str, Path]) -> Module:
        """Parse a schematic file; format chosen by extension
        (``.v``/``.sv`` -> Verilog, ``.sp``/``.spi``/``.cir``/``.ckt``
        -> SPICE, ``.blif`` -> technology-mapped BLIF).

        A Verilog file containing several modules is treated as a
        hierarchical design: it is linked and flattened from its
        (inferred) top module, so the estimator always works on one
        flat module.
        """
        path = Path(path)
        text = path.read_text()
        suffix = path.suffix.lower()
        if suffix in (".v", ".sv", ".vh"):
            from repro.netlist.hierarchy import flatten_source
            from repro.netlist.verilog import parse_verilog_library

            modules = parse_verilog_library(text, str(path))
            if len(modules) == 1:
                return modules[0]
            return flatten_source(modules)
        if suffix in (".sp", ".spi", ".cir", ".ckt", ".spice"):
            return parse_spice(text, str(path))
        if suffix == ".blif":
            from repro.frontend.blif import parse_blif

            return parse_blif(text, str(path))
        raise EstimationError(
            f"cannot infer schematic format from extension {suffix!r} "
            "(expected a Verilog, SPICE, or BLIF extension)"
        )

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------
    def estimate(
        self,
        module: Module,
        methodologies: Iterable[str] = ("standard-cell", "full-custom"),
    ) -> ModuleEstimate:
        """Estimate the module under the requested methodologies."""
        wanted = set(methodologies)
        known = {"standard-cell", "full-custom"}
        unknown = wanted - known
        if unknown:
            raise EstimationError(
                f"unknown methodologies {sorted(unknown)}; expected a "
                f"subset of {sorted(known)}"
            )
        if not wanted:
            raise EstimationError("at least one methodology is required")

        start = time.perf_counter()
        standard_cell = None
        full_custom = None
        full_custom_average = None
        if "standard-cell" in wanted:
            standard_cell = estimate_standard_cell(
                module, self.process, self.config
            )
        if "full-custom" in wanted:
            full_custom, full_custom_average = estimate_full_custom_both(
                module, self.process, self.config
            )
        elapsed = time.perf_counter() - start

        stats = scan_module(
            module,
            device_width=self.process.device_width,
            device_height=self.process.device_height,
            port_width=self.config.port_pitch_override
            or self.process.port_pitch,
            power_nets=self.config.power_nets,
        )
        return ModuleEstimate(
            module_name=module.name,
            statistics=stats,
            process_name=self.process.name,
            standard_cell=standard_cell,
            full_custom=full_custom,
            full_custom_average=full_custom_average,
            cpu_seconds=elapsed,
        )

    def estimate_all(
        self,
        modules: Iterable[Module],
        methodologies: Iterable[str] = ("standard-cell", "full-custom"),
    ) -> List[ModuleEstimate]:
        """Estimate every module of a chip (the floor-planning use case)."""
        methodologies = tuple(methodologies)
        return [self.estimate(module, methodologies) for module in modules]
