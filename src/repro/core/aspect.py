"""Aspect-ratio estimation (Section 5).

"Currently, we estimate the module aspect ratio by dividing the
estimated module area by the length along a module side in which all
input and output ports can be fitted.  ...  We use the control
criterion that all input and output ports must fit along any one of the
four layout edges or at least along one of the longer edges."

* Standard-cell: the aspect ratio falls out of Eq. 12's width and
  height directly (Eq. 14); the row-count algorithm
  (:func:`repro.core.standard_cell.choose_initial_rows`) already folded
  the port criterion into the choice of n.
* Full-custom: start from a 1:1 square of the estimated area; if the
  edge is shorter than the total port length, stretch the module so one
  edge equals the port length (Section 5's algorithm, step 2a).
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.errors import EstimationError
from repro.obs.trace import current_tracer


def full_custom_dimensions(
    area: float,
    port_length: float,
    max_aspect: float = 2.0,
) -> Tuple[float, float]:
    """Width and height for a full-custom module of the given area.

    Implements the Section 5 full-custom algorithm:

    1. assume 1:1 — edge = sqrt(area);
    2. if the edge already holds all ports, keep 1:1 (step 2b);
       otherwise make the long edge exactly the port length and divide
       the area by it for the other edge (step 2a).

    The paper notes manually-designed modules fall between 1:1 and 1:2;
    ``max_aspect`` caps the stretch at that range unless ports force
    more (the port criterion dominates — an unconnectable module is
    useless however nicely shaped).
    """
    if area <= 0:
        raise EstimationError(f"area must be positive, got {area}")
    if port_length < 0:
        raise EstimationError(
            f"port length must be >= 0, got {port_length}"
        )
    tracer = current_tracer()
    with tracer.span("aspect.fit") as span:
        edge = math.sqrt(area)
        if port_length <= edge:
            if tracer.enabled:
                span.set("port_limited", False)
                tracer.metrics.incr("aspect.evals")
            return edge, edge
        # Ports force an elongated module: width = port_length is already
        # the *minimum* width satisfying the criterion, so the max_aspect
        # preference yields to it (an unconnectable module is useless
        # however nicely shaped).
        del max_aspect
        width = port_length
        height = area / width
        if tracer.enabled:
            span.set("port_limited", True)
            metrics = tracer.metrics
            metrics.incr("aspect.evals")
            metrics.incr("aspect.port_limited")
        return width, height


def fits_ports(width: float, height: float, port_length: float) -> bool:
    """The control criterion: do all ports fit along one of the longer
    edges?"""
    if width <= 0 or height <= 0:
        raise EstimationError(
            f"dimensions must be positive, got {width} x {height}"
        )
    return port_length <= max(width, height)


def aspect_within_typical_range(
    width: float, height: float, max_aspect: float = 2.0
) -> bool:
    """Whether the shape falls in the paper's typical 1:1..1:2 band."""
    if width <= 0 or height <= 0:
        raise EstimationError(
            f"dimensions must be positive, got {width} x {height}"
        )
    ratio = max(width, height) / min(width, height)
    return ratio <= max_aspect + 1e-9
