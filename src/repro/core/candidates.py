"""Multiple aspect-ratio candidates (the paper's Section 7 future work).

"The estimator will be changed to output four or five aspect ratio
estimates to allow chip floor planners more flexibility in choosing
module shapes."  This module produces those candidates:

* **Standard-Cell** — re-estimate at several row counts around the
  Section 5 initial choice; every row count is a genuinely different
  implementation with its own width, height, and area.
* **Full-Custom** — the estimated area is shape-flexible (devices can
  be packed into any reasonable envelope), so candidates are the same
  area at several aspect ratios in the paper's typical 1:1 .. 1:2
  band, filtered by the port-length control criterion.

:func:`candidate_shapes` merges both into the shape list a slicing
floorplanner consumes; the C3 benchmark measures how much chip dead
space the extra flexibility removes.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.core.aspect import fits_ports
from repro.core.config import EstimatorConfig
from repro.core.full_custom import estimate_full_custom
from repro.core.results import (
    FullCustomEstimate,
    ModuleEstimate,
    StandardCellEstimate,
)
from repro.core.standard_cell import choose_initial_rows
from repro.errors import EstimationError
from repro.netlist.model import Module
from repro.netlist.stats import scan_module
from repro.technology.process import ProcessDatabase

#: Aspect ratios offered for full-custom candidates (width : height).
DEFAULT_FULL_CUSTOM_ASPECTS: Tuple[float, ...] = (1.0, 1.25, 1.5, 1.75, 2.0)


def standard_cell_candidates(
    module: Module,
    process: ProcessDatabase,
    config: Optional[EstimatorConfig] = None,
    count: int = 5,
    stats=None,
) -> List[StandardCellEstimate]:
    """Up to ``count`` standard-cell implementations at different row
    counts, centred on the Section 5 initial choice.

    ``stats`` injects a pre-computed scan (the C2 loop and the
    portfolio optimizer hold one per module); when omitted the module
    is scanned here.  Either way the ranking itself always goes
    through the shared plan cache."""
    config = config or EstimatorConfig()
    if stats is None:
        stats = scan_module(
            module,
            device_width=process.device_width,
            device_height=process.device_height,
            port_width=config.port_pitch_override or process.port_pitch,
            power_nets=config.power_nets,
        )
    return standard_cell_candidates_from_stats(stats, process, config, count)


def standard_cell_candidates_from_stats(
    stats,
    process: ProcessDatabase,
    config: Optional[EstimatorConfig] = None,
    count: int = 5,
) -> List[StandardCellEstimate]:
    """The row-count spread from pre-computed statistics (the C2
    aspect-ratio search re-queries this as the netlist evolves, feeding
    it incremental snapshots instead of rescanning)."""
    if count < 1:
        raise EstimationError(f"count must be >= 1, got {count}")
    config = config or EstimatorConfig()
    centre = (
        config.rows
        if config.rows is not None
        else choose_initial_rows(stats, process, config)
    )
    row_counts = _spread_around(centre, count, config.max_rows)
    # Deferred: repro.perf.plan imports repro.core.standard_cell.
    from repro.perf.plan import get_plan

    # One batched plan evaluation covers the whole spread (the numpy
    # backend's 2-D row-sweep kernel; bit-identical to the per-row
    # direct path under exact via the plan_vs_direct invariant).
    plan = get_plan(stats, process, config)
    return list(plan.evaluate_rows(row_counts))


def full_custom_candidates(
    module: Module,
    process: ProcessDatabase,
    config: Optional[EstimatorConfig] = None,
    aspects: Sequence[float] = DEFAULT_FULL_CUSTOM_ASPECTS,
    stats=None,
) -> List[FullCustomEstimate]:
    """Full-custom implementations of the estimated area at several
    aspect ratios.

    Candidates violating the port criterion (all ports along one of
    the longer edges) are dropped; the port-stretched shape is always
    included, so at least one candidate survives.  ``stats`` injects a
    pre-computed scan shared with the caller's other estimates.
    """
    if not aspects:
        raise EstimationError("at least one aspect ratio is required")
    config = config or EstimatorConfig()
    if stats is None:
        stats = scan_module(
            module,
            device_width=process.device_width,
            device_height=process.device_height,
            port_width=config.port_pitch_override or process.port_pitch,
            power_nets=config.power_nets,
        )
    base = estimate_full_custom(module, process, config, stats=stats)
    port_length = stats.total_port_width

    candidates: List[FullCustomEstimate] = []
    seen: set = set()
    for aspect in sorted(set(aspects)):
        if aspect <= 0:
            raise EstimationError(f"aspect must be positive, got {aspect}")
        width = math.sqrt(base.area * aspect)
        height = base.area / width
        if not fits_ports(width, height, port_length):
            continue
        key = round(width, 6)
        if key in seen:
            continue
        seen.add(key)
        candidates.append(_reshaped(base, width, height))

    base_key = round(base.width, 6)
    if base_key not in seen:
        # The Section 5 algorithm's own shape (port-stretched when
        # ports demand it) is always a valid candidate.
        candidates.append(base)
    return candidates


def candidate_shapes(
    module: Module,
    process: ProcessDatabase,
    config: Optional[EstimatorConfig] = None,
    count: int = 5,
) -> List[Tuple[str, float, float]]:
    """All candidate (label, width, height) triples for a module —
    both methodologies, ready to feed a floorplanner's shape list.

    The module is scanned exactly once; both rankings share the scan
    (and the standard-cell side the cached plan)."""
    config = config or EstimatorConfig()
    stats = scan_module(
        module,
        device_width=process.device_width,
        device_height=process.device_height,
        port_width=config.port_pitch_override or process.port_pitch,
        power_nets=config.power_nets,
    )
    shapes: List[Tuple[str, float, float]] = []
    for estimate in standard_cell_candidates(
        module, process, config, count, stats=stats
    ):
        shapes.append(
            (f"sc-{estimate.rows}rows", estimate.width, estimate.height)
        )
    for estimate in full_custom_candidates(
        module, process, config, stats=stats
    ):
        shapes.append(
            (
                f"fc-{estimate.width / estimate.height:.2f}",
                estimate.width,
                estimate.height,
            )
        )
    return shapes


def _spread_around(centre: int, count: int, max_rows: int) -> List[int]:
    """Distinct row counts nearest the centre: centre, +-1, +-2, ..."""
    result: List[int] = []
    offset = 0
    while len(result) < count:
        for candidate in (centre + offset, centre - offset):
            if 1 <= candidate <= max_rows and candidate not in result:
                result.append(candidate)
                if len(result) == count:
                    break
        offset += 1
        if offset > max_rows:
            break
    return sorted(result)


def _reshaped(base: FullCustomEstimate, width: float,
              height: float) -> FullCustomEstimate:
    return FullCustomEstimate(
        module_name=base.module_name,
        device_area_mode=base.device_area_mode,
        device_area=base.device_area,
        wire_area=base.wire_area,
        area=base.area,
        width=width,
        height=height,
        net_areas=base.net_areas,
    )
