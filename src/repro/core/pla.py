"""PLA area model (extension).

The paper's introduction cites Gerveshi's DAC-1986 result: "for PLAs,
the module area has a simple linear relationship to the number of basic
logic functions and the number of devices in the chip."  This module
provides that third estimator so a floor planner can mix PLA modules
with standard-cell and full-custom ones.

A programmed-logic-array with ``inputs`` I, ``product terms`` P and
``outputs`` O has a well-known structural area:

* AND plane: 2I columns x P rows,
* OR plane: O columns x P rows,
* plus per-row/column overhead (input buffers, output drivers,
  pull-ups).

With a fixed grid pitch g (lambda), area = g^2 * P * (2I + O) plus
linear overhead terms — linear in both the function count (P) and the
device count (grid crosspoints programmed), which is exactly Gerveshi's
relation.  :func:`fit_linear_model` recovers the linear coefficients
from sampled (functions, devices, area) observations, reproducing the
P1 benchmark's linearity check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import EstimationError


@dataclass(frozen=True)
class PlaSpec:
    """Structural description of a PLA module."""

    name: str
    inputs: int
    outputs: int
    product_terms: int
    programmed_points: int  # devices: transistors at programmed crosspoints

    def __post_init__(self) -> None:
        for label, value in (
            ("inputs", self.inputs),
            ("outputs", self.outputs),
            ("product_terms", self.product_terms),
        ):
            if value < 1:
                raise EstimationError(f"{label} must be >= 1, got {value}")
        maximum = self.product_terms * (2 * self.inputs + self.outputs)
        if not 0 <= self.programmed_points <= maximum:
            raise EstimationError(
                f"programmed_points must be in [0, {maximum}], "
                f"got {self.programmed_points}"
            )


@dataclass(frozen=True)
class PlaEstimate:
    """Estimated PLA geometry (lambda / lambda^2)."""

    name: str
    width: float
    height: float
    area: float

    @property
    def aspect_ratio(self) -> float:
        return self.width / self.height


def estimate_pla(
    spec: PlaSpec,
    grid_pitch: float = 8.0,
    row_overhead: float = 20.0,
    column_overhead: float = 30.0,
) -> PlaEstimate:
    """Structural PLA area.

    ``grid_pitch`` is the crosspoint pitch; ``row_overhead`` the width
    of the input-buffer / pull-up column stack added to each row;
    ``column_overhead`` the height of drivers added to each column.
    """
    if grid_pitch <= 0:
        raise EstimationError(f"grid_pitch must be positive, got {grid_pitch}")
    columns = 2 * spec.inputs + spec.outputs
    width = columns * grid_pitch + row_overhead
    height = spec.product_terms * grid_pitch + column_overhead
    return PlaEstimate(spec.name, width, height, width * height)


def fit_linear_model(
    observations: Sequence[Tuple[float, float, float]],
) -> Tuple[float, float, float]:
    """Least-squares fit  area ~ a*functions + b*devices + c.

    ``observations`` are (functions, devices, area) triples.  Returns
    (a, b, c).  Implemented with plain normal equations (3x3) to avoid
    a numpy dependency in the core package.
    """
    if len(observations) < 3:
        raise EstimationError(
            f"need at least 3 observations to fit, got {len(observations)}"
        )
    # Normal equations: X^T X beta = X^T y with X rows (f, d, 1).
    sxx = [[0.0] * 3 for _ in range(3)]
    sxy = [0.0] * 3
    for functions, devices, area in observations:
        row = (functions, devices, 1.0)
        for i in range(3):
            for j in range(3):
                sxx[i][j] += row[i] * row[j]
            sxy[i] += row[i] * area
    beta = _solve3(sxx, sxy)
    return beta[0], beta[1], beta[2]


def linearity_r_squared(
    observations: Sequence[Tuple[float, float, float]],
) -> float:
    """Coefficient of determination of the linear fit — the P1 metric.

    Gerveshi's claim predicts R^2 very close to 1 for structural PLA
    areas.
    """
    a, b, c = fit_linear_model(observations)
    areas = [area for _, _, area in observations]
    mean = sum(areas) / len(areas)
    ss_total = sum((area - mean) ** 2 for area in areas)
    ss_residual = sum(
        (area - (a * functions + b * devices + c)) ** 2
        for functions, devices, area in observations
    )
    if ss_total == 0:
        return 1.0
    return 1.0 - ss_residual / ss_total


def _solve3(matrix: List[List[float]], rhs: List[float]) -> List[float]:
    """Gaussian elimination with partial pivoting for a 3x3 system."""
    a = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    size = 3
    for col in range(size):
        pivot = max(range(col, size), key=lambda r: abs(a[r][col]))
        if abs(a[pivot][col]) < 1e-12:
            raise EstimationError(
                "singular system: observations are collinear; vary the "
                "PLA sizes"
            )
        a[col], a[pivot] = a[pivot], a[col]
        for row in range(col + 1, size):
            factor = a[row][col] / a[col][col]
            for k in range(col, size + 1):
                a[row][k] -= factor * a[col][k]
    solution = [0.0] * size
    for row in range(size - 1, -1, -1):
        residual = a[row][size] - sum(
            a[row][k] * solution[k] for k in range(row + 1, size)
        )
        solution[row] = residual / a[row][row]
    return solution
