"""Result records produced by the estimators.

These are the rows of the paper's Tables 1 and 2: estimated wire area,
total area, dimensions, track counts, feed-through counts, and aspect
ratios, with enough detail retained for the benchmark harness to print
the tables and for the floor planner to consume the estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.netlist.stats import ModuleStatistics
from repro.units import normalized_aspect


@dataclass(frozen=True)
class StandardCellEstimate:
    """Standard-cell estimate for one module at one row count (Eq. 12)."""

    module_name: str
    rows: int
    cell_width_per_row: float       # W_avg * N / n (lambda)
    feedthroughs: int               # E(M), rounded up
    feedthrough_width: float        # E(M) * f_w (lambda)
    tracks: int                     # expectation of total track count
    tracks_by_net_size: Tuple[Tuple[int, int], ...]  # (D, tracks per net)
    width: float                    # row length incl. feed-throughs (lambda)
    height: float                   # n rows + all tracks (lambda)
    cell_area: float                # active-cell area (lambda^2)
    wiring_area: float              # area - cell portion (lambda^2)
    area: float                     # total module area (lambda^2)

    @property
    def aspect_ratio(self) -> float:
        """Width / height (Eq. 14)."""
        return self.width / self.height

    @property
    def normalized_aspect(self) -> float:
        return normalized_aspect(self.width, self.height)


@dataclass(frozen=True)
class FullCustomEstimate:
    """Full-custom estimate for one module (Eq. 13)."""

    module_name: str
    device_area_mode: str           # "exact" or "average"
    device_area: float              # active device area (lambda^2)
    wire_area: float                # sum of per-net interconnection areas
    area: float                     # total (lambda^2)
    width: float                    # from the aspect algorithm (lambda)
    height: float
    net_areas: Tuple[Tuple[str, float], ...] = ()

    @property
    def aspect_ratio(self) -> float:
        return self.width / self.height

    @property
    def normalized_aspect(self) -> float:
        return normalized_aspect(self.width, self.height)


@dataclass(frozen=True)
class ModuleEstimate:
    """Fig. 1 output record: both methodologies for one module.

    This is what the estimator's output interface writes to the
    database that "is input to the floor planner".
    """

    module_name: str
    statistics: ModuleStatistics
    process_name: str
    standard_cell: Optional[StandardCellEstimate]
    full_custom: Optional[FullCustomEstimate]
    full_custom_average: Optional[FullCustomEstimate] = None
    cpu_seconds: float = 0.0

    def best_methodology(self) -> str:
        """Methodology with the smaller estimated area.

        The paper's motivation: "The designer can then intelligently
        choose the most appropriate methodology."
        """
        candidates: Dict[str, float] = {}
        if self.standard_cell is not None:
            candidates["standard-cell"] = self.standard_cell.area
        if self.full_custom is not None:
            candidates["full-custom"] = self.full_custom.area
        if not candidates:
            return "none"
        return min(candidates, key=candidates.get)
