"""The paper's primary contribution: the module area estimator.

* :mod:`repro.core.probability` — the probabilistic machinery of
  Section 4.1: row-spread distribution (Eqs. 2-3) and feed-through
  probabilities (Eqs. 4-11).
* :mod:`repro.core.standard_cell` — the standard-cell area estimator
  (Eq. 12) with the row-count selection algorithm of Section 5.
* :mod:`repro.core.full_custom` — the full-custom estimator (Eq. 13).
* :mod:`repro.core.aspect` — aspect-ratio estimation (Section 5, Eq. 14).
* :mod:`repro.core.estimator` — the facade of Fig. 1 tying netlist,
  process database, and both estimators together.
* :mod:`repro.core.pla` — the Gerveshi linear PLA area model cited in
  the introduction (extension).
"""

from repro.core.candidates import (
    candidate_shapes,
    full_custom_candidates,
    standard_cell_candidates,
)
from repro.core.config import EstimatorConfig
from repro.core.estimator import ModuleAreaEstimator
from repro.core.full_custom import estimate_full_custom
from repro.core.gate_array import (
    GateArrayEstimate,
    GateArraySpec,
    compare_methodologies,
    estimate_gate_array,
)
from repro.core.results import (
    FullCustomEstimate,
    ModuleEstimate,
    StandardCellEstimate,
)
from repro.core.sharing import estimate_shared_tracks
from repro.core.standard_cell import estimate_standard_cell

__all__ = [
    "EstimatorConfig",
    "FullCustomEstimate",
    "GateArrayEstimate",
    "GateArraySpec",
    "ModuleAreaEstimator",
    "ModuleEstimate",
    "StandardCellEstimate",
    "candidate_shapes",
    "compare_methodologies",
    "estimate_gate_array",
    "estimate_full_custom",
    "estimate_shared_tracks",
    "estimate_standard_cell",
    "full_custom_candidates",
    "standard_cell_candidates",
]
