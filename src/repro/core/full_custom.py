"""Full-custom module area estimation (Section 4.2, Eq. 13).

"We calculate the minimum interconnection area for each net, instead of
each wire, because we cannot compute exact wire lengths."  Each net is
modelled as a two-row arrangement of its components with a one-track
routing channel between the rows:

* channel *width* (height) = one routing-track pitch,
* channel *length* = the span of ceil(D/2) components placed in a row.

Table 1's footnote — "All nets in this module were two-component nets,
and therefore contributed nothing to wire area" — pins down the length
convention: two facing components abut across the channel and the wire
between them has zero length, i.e. the span is ``(ceil(D/2) - 1)`` cell
pitches (``net_span_mode="span"``, the default).  The literal sentence
of Section 4.2 ("the module length is half of the device row length")
gives ``ceil(D/2)`` pitches and is available as
``net_span_mode="literal"``.

Total area (Eq. 13)::

    area = device_area + sum_j A_j

where ``device_area`` uses exact per-device footprints
(``device_area_mode="exact"``) or the average-device approximation
``N * W_avg * h_avg`` (``"average"``) — the two estimate columns of
Table 1.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.core.aspect import full_custom_dimensions
from repro.core.config import EstimatorConfig
from repro.core.results import FullCustomEstimate
from repro.errors import EstimationError
from repro.netlist.model import Module, Net
from repro.netlist.stats import ModuleStatistics, scan_module
from repro.obs.trace import current_tracer
from repro.technology.process import ProcessDatabase


def estimate_full_custom(
    module: Module,
    process: ProcessDatabase,
    config: Optional[EstimatorConfig] = None,
    stats: Optional["ModuleStatistics"] = None,
) -> FullCustomEstimate:
    """Estimate full-custom layout area for a module.

    ``stats`` lets batch callers reuse one schematic scan across
    several configurations; when omitted the module is scanned here.
    """
    config = config or EstimatorConfig()
    if module.device_count == 0:
        raise EstimationError(
            f"module {module.name!r}: cannot estimate an empty module"
        )
    tracer = current_tracer()
    if stats is None:
        with tracer.span("scan") as span:
            stats = scan_module(
                module,
                device_width=process.device_width,
                device_height=process.device_height,
                port_width=config.port_pitch_override or process.port_pitch,
                power_nets=config.power_nets,
            )
            if tracer.enabled:
                span.set("module", stats.module_name)
                span.set("devices", stats.device_count)
                span.set("nets", stats.net_count)
                tracer.metrics.incr("scan.modules")

    with tracer.span("fc.estimate") as span:
        if config.device_area_mode == "exact":
            device_area = stats.total_device_area
        else:
            device_area = (
                stats.device_count * stats.average_width * stats.average_height
            )

        net_areas: List[Tuple[str, float]] = []
        wire_area = 0.0
        net_count = 0
        with tracer.span("fc.net_areas"):
            for net in module.iter_signal_nets(config.power_nets):
                net_count += 1
                area = net_interconnection_area(net, module, process, config,
                                                stats.average_width)
                if area > 0.0:
                    net_areas.append((net.name, area))
                    wire_area += area

        total_area = device_area + wire_area
        width, height = full_custom_dimensions(
            total_area, stats.total_port_width, config.max_aspect
        )
        if tracer.enabled:
            span.set("module", stats.module_name)
            span.set("wire_area", wire_area)
            metrics = tracer.metrics
            metrics.incr("fc.estimates")
            metrics.incr("fc.nets", net_count)
            metrics.incr("fc.wire_area", wire_area)
    return FullCustomEstimate(
        module_name=module.name,
        device_area_mode=config.device_area_mode,
        device_area=device_area,
        wire_area=wire_area,
        area=total_area,
        width=width,
        height=height,
        net_areas=tuple(net_areas),
    )


def estimate_full_custom_both(
    module: Module,
    process: ProcessDatabase,
    config: Optional[EstimatorConfig] = None,
) -> Tuple[FullCustomEstimate, FullCustomEstimate]:
    """Both Table 1 estimate columns: (exact areas, average areas).

    "This minimum area estimation is first performed using exact device
    areas and again performed using the average device area."
    """
    config = config or EstimatorConfig()
    exact = estimate_full_custom(
        module, process, config.with_(device_area_mode="exact")
    )
    average = estimate_full_custom(
        module, process, config.with_(device_area_mode="average")
    )
    return exact, average


def net_interconnection_area(
    net: Net,
    module: Module,
    process: ProcessDatabase,
    config: Optional[EstimatorConfig] = None,
    average_width: Optional[float] = None,
) -> float:
    """Minimum interconnection area A_j for one net (Section 4.2).

    Components are split between two facing rows; the channel between
    them is one track tall and spans the longer row.  The cell pitch is
    the mean width of the net's own components in "exact" mode, or the
    module-wide W_avg in "average" mode.
    """
    config = config or EstimatorConfig()
    components = net.component_count
    if components <= 1:
        return 0.0

    half = math.ceil(components / 2)
    if config.net_span_mode == "span":
        span_cells = half - 1
    else:
        span_cells = half
    if span_cells <= 0:
        return 0.0

    if config.device_area_mode == "exact" or average_width is None:
        widths = [
            process.device_width(module.device(name))
            for name in net.devices()
        ]
        pitch = sum(widths) / len(widths)
    else:
        pitch = average_width

    return process.track_pitch * span_cells * pitch
