"""Per-channel congestion distributions and routability scoring.

The paper's Eq. 2-3 machinery collapses routing demand into one
per-module track count.  The same per-net span probabilities predict
*where* those tracks land: for a module placed in ``n`` rows the
router (:mod:`repro.layout.routing.global_route`) has ``n + 1``
channels, and a D-component net uses channel k with the closed-form
probability of :func:`repro.perf.kernels.channel_crossing_probability`.
From that grid this module derives, per channel:

* **crossing mean** — the expected number of nets placing a trunk in
  the channel (the upper-bound track view: the paper's "each routing
  track only contains one signal net");
* **demand mean** — the module's total Eq. 2-3 track count
  redistributed over channels by normalised crossing weights, so the
  per-channel means sum back to the estimator's own total exactly (in
  rational arithmetic — :mod:`repro.congestion.reference` proves it);
* **exceedance** — P(more nets cross than the channel has capacity
  for), the Poisson-binomial overflow mass over the independent
  per-net Bernoulli crossings.

``routability`` is the product of the per-channel survival
probabilities ``1 - exceedance``: the probability that *no* channel
overflows under the independence model.  It is consumed three ways:
``mae explain --congestion`` renders the distribution as a heatmap,
``mae verify --check congestion_oracle`` gates the demand means
against routed track usage, and the portfolio floorplan race prices
``--routability-weight`` into its candidate costs through the plan
cache (:meth:`repro.perf.plan.EstimationPlan.evaluate_congestion`).

Backend contract: the probability grid comes from the selected
backend (:mod:`repro.perf.backends`); everything downstream —
allocation, the exceedance DP, the products — is shared Python
accumulation in this module, so the numpy path is bit-identical to
the exact path whenever the grids are (which they are by
construction; see ``binary_float_power``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.config import EstimatorConfig
from repro.errors import EstimationError
from repro.netlist.model import Module
from repro.netlist.stats import scan_module
from repro.perf.backends import get_backend, resolve_backend_name
from repro.perf.kernels import tracks_for_histogram
from repro.technology.process import ProcessDatabase

#: Fallback channel capacity (tracks) when neither the caller nor the
#: process database states one.  Sized to the verify corpus: the
#: densest routed channels the standard-cell oracle produces on
#: corpus-scale modules sit in the low tens of tracks.
DEFAULT_CHANNEL_CAPACITY = 20

#: Where a resolved capacity can come from, strongest first.
CAPACITY_SOURCES = ("override", "process", "default")


def resolve_channel_capacity(
    process: Optional[ProcessDatabase] = None,
    override: Optional[int] = None,
) -> Tuple[int, str]:
    """Resolve the per-channel track capacity and say where it came from.

    The chain, strongest first: an explicit ``override`` (CLI flag or
    API argument), the loaded process database's ``channel_capacity``
    (the technology's routing budget), then
    :data:`DEFAULT_CHANNEL_CAPACITY`.  Returns ``(capacity, source)``
    with ``source`` one of :data:`CAPACITY_SOURCES` — explain output
    reports the source so a silently-defaulted capacity is visible.
    """
    if override is not None:
        if override < 1:
            raise EstimationError(
                f"channel capacity must be >= 1, got {override}"
            )
        return int(override), "override"
    if process is not None and process.channel_capacity is not None:
        return int(process.channel_capacity), "process"
    return DEFAULT_CHANNEL_CAPACITY, "default"


@dataclass(frozen=True)
class CongestionDistribution:
    """Per-channel congestion for one (histogram, rows, capacity).

    All tuples are indexed by channel 0..rows (router numbering;
    channel 0 is never used and carries zeros throughout).
    """

    rows: int
    capacity: int
    crossing_means: Tuple[float, ...]
    demand_means: Tuple[float, ...]
    exceedances: Tuple[float, ...]

    @property
    def channel_count(self) -> int:
        return len(self.demand_means)

    @property
    def total_demand(self) -> float:
        """Sum of the per-channel demand means — equals the module's
        Eq. 2-3 track total up to float accumulation (exactly, in the
        reference arithmetic)."""
        total = 0.0
        for mean in self.demand_means:
            total += mean
        return total

    @property
    def routability(self) -> float:
        """P(no channel exceeds capacity) under independence: the
        product of per-channel survival probabilities, in [0, 1]."""
        score = 1.0
        for exceedance in self.exceedances:
            score *= 1.0 - exceedance
        return score

    @property
    def worst_channel(self) -> int:
        """The channel with the highest exceedance probability."""
        worst = 0
        for channel, exceedance in enumerate(self.exceedances):
            if exceedance > self.exceedances[worst]:
                worst = channel
        return worst


def _exceedance(
    probabilities: Sequence[float],
    counts: Sequence[int],
    capacity: int,
) -> float:
    """P(more than ``capacity`` nets cross one channel).

    Poisson-binomial overflow mass by direct DP with an absorbing
    overflow state: the pmf over 0..capacity crossings is convolved
    with one Bernoulli per net, mass walking past ``capacity`` is
    accumulated and never returns.  O(nets * capacity), plain Python
    floats in histogram order — backend-independent, so bit-identical
    grids give bit-identical exceedances.
    """
    active = [
        (probability, count)
        for probability, count in zip(probabilities, counts)
        if probability > 0.0
    ]
    if sum(count for _, count in active) <= capacity:
        # Fewer candidate nets than tracks: overflow mass is exactly
        # zero, matching what the DP would accumulate.
        return 0.0
    # Entries past the processed-trial count are exactly zero and the
    # convolution maps zeros to zeros, so clamping the update window to
    # the trial count is bit-identical to the fixed-width DP.
    pmf = [0.0] * (capacity + 1)
    pmf[0] = 1.0
    overflow = 0.0
    done = 0
    for probability, count in active:
        keep = 1.0 - probability
        for _ in range(count):
            if done >= capacity:
                overflow += pmf[capacity] * probability
            for c in range(min(done + 1, capacity), 0, -1):
                pmf[c] = pmf[c] * keep + pmf[c - 1] * probability
            pmf[0] = pmf[0] * keep
            done += 1
    return min(1.0, max(0.0, overflow))


def congestion_distribution(
    net_size_histogram: Sequence[Tuple[int, int]],
    rows: int,
    capacity: int,
    mode: str = "paper",
    backend: Optional[str] = None,
) -> CongestionDistribution:
    """The per-channel congestion distribution for a (D, y_D) histogram.

    ``mode`` is the row-spread mode the Eq. 2-3 track counts use, so a
    congestion distribution always redistributes exactly the demand
    the matching estimate charged.  ``backend`` resolves like every
    planning API (None = process default).
    """
    if rows < 1:
        raise EstimationError(f"rows must be >= 1, got {rows}")
    if capacity < 1:
        raise EstimationError(f"capacity must be >= 1, got {capacity}")
    histogram = tuple(
        (components, count)
        for components, count in net_size_histogram
        if components >= 2
    )
    engine = get_backend(backend)
    grid = engine.crossing_probabilities(histogram, rows)
    tracks = tracks_for_histogram(histogram, rows, mode)
    counts = tuple(count for _, count in histogram)
    # Per-entry normalisers: expected channels used, >= 1 for D >= 2.
    weight_sums = []
    for j in range(len(histogram)):
        total = 0.0
        for channel in range(rows + 1):
            total += grid[channel][j]
        weight_sums.append(total)
    crossing_means = [0.0] * (rows + 1)
    demand_means = [0.0] * (rows + 1)
    exceedances = [0.0] * (rows + 1)
    for channel in range(rows + 1):
        mirror = rows - channel
        if 1 <= mirror < channel <= rows - 1:
            # The crossing kernels order their subtraction so the grid
            # is bitwise symmetric under k <-> rows - k (channel 0 and
            # channel rows excluded); channels in the upper half share
            # every per-channel number with their mirror exactly.
            crossing_means[channel] = crossing_means[mirror]
            demand_means[channel] = demand_means[mirror]
            exceedances[channel] = exceedances[mirror]
            continue
        probabilities = grid[channel]
        crossing = 0.0
        demand = 0.0
        for j, count in enumerate(counts):
            crossing += count * probabilities[j]
            demand += (
                count * tracks[j] * (probabilities[j] / weight_sums[j])
            )
        crossing_means[channel] = crossing
        demand_means[channel] = demand
        exceedances[channel] = _exceedance(probabilities, counts, capacity)
    return CongestionDistribution(
        rows=rows,
        capacity=capacity,
        crossing_means=tuple(crossing_means),
        demand_means=tuple(demand_means),
        exceedances=tuple(exceedances),
    )


@dataclass(frozen=True)
class CongestionReport:
    """A module-level congestion report (the ``mae explain
    --congestion`` payload)."""

    module_name: str
    rows: int
    capacity: int
    capacity_source: str
    backend: str
    distribution: CongestionDistribution

    @property
    def routability(self) -> float:
        return self.distribution.routability

    @property
    def total_demand(self) -> float:
        return self.distribution.total_demand

    @property
    def worst_channel(self) -> int:
        return self.distribution.worst_channel


def congestion_report(
    module: Module,
    process: ProcessDatabase,
    rows: Optional[int] = None,
    config: Optional[EstimatorConfig] = None,
    capacity: Optional[int] = None,
    backend: Optional[str] = None,
) -> CongestionReport:
    """Scan ``module`` and build its congestion report.

    ``rows = None`` falls back to ``config.rows`` and then to the
    Section 5 row choice of a full standard-cell estimate, so the
    report describes the same floorplan the estimator would pick.
    Capacity resolves through :func:`resolve_channel_capacity`.
    """
    config = config or EstimatorConfig()
    if rows is None:
        rows = config.rows
    if rows is None:
        from repro.core.standard_cell import estimate_standard_cell

        rows = estimate_standard_cell(module, process, config).rows
    if rows < 1:
        raise EstimationError(f"rows must be >= 1, got {rows}")
    resolved_capacity, source = resolve_channel_capacity(process, capacity)
    resolved_backend = resolve_backend_name(backend)
    stats = scan_module(
        module,
        device_width=process.device_width,
        device_height=process.device_height,
        port_width=config.port_pitch_override or process.port_pitch,
        power_nets=config.power_nets,
    )
    distribution = congestion_distribution(
        stats.net_size_histogram,
        rows,
        resolved_capacity,
        mode=config.row_spread_mode,
        backend=resolved_backend,
    )
    return CongestionReport(
        module_name=module.name,
        rows=rows,
        capacity=resolved_capacity,
        capacity_source=source,
        backend=resolved_backend,
        distribution=distribution,
    )


def routability_score(
    module: Module,
    rows: Optional[int],
    process: ProcessDatabase,
    capacity: Optional[int] = None,
    config: Optional[EstimatorConfig] = None,
    backend: Optional[str] = None,
) -> float:
    """P(no channel of ``module`` at ``rows`` exceeds capacity).

    The scalar the portfolio race trades against area; 1.0 means every
    channel is comfortably under budget, values near 0 mean overflow
    is near-certain somewhere.
    """
    return congestion_report(
        module,
        process,
        rows=rows,
        config=config,
        capacity=capacity,
        backend=backend,
    ).routability


__all__ = [
    "CAPACITY_SOURCES",
    "CongestionDistribution",
    "CongestionReport",
    "DEFAULT_CHANNEL_CAPACITY",
    "congestion_distribution",
    "congestion_report",
    "resolve_channel_capacity",
    "routability_score",
]
