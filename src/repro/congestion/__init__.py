"""Per-channel congestion distributions and early routability scoring.

Extends the paper's single per-module track count (Eq. 2-3) into a
per-channel track-demand distribution — mean and capacity-exceedance
probability per routing channel — plus a scalar routability score, all
derived from the same span/crossing probabilities the estimator
already computes.  See :mod:`repro.congestion.model` for the
production float path and :mod:`repro.congestion.reference` for the
Fraction-exact oracle it is property-tested against; the router-backed
accuracy gate lives in :mod:`repro.verify.congestion_envelope`.
"""

from repro.congestion.model import (
    CAPACITY_SOURCES,
    CongestionDistribution,
    CongestionReport,
    DEFAULT_CHANNEL_CAPACITY,
    congestion_distribution,
    congestion_report,
    resolve_channel_capacity,
    routability_score,
)
from repro.congestion.reference import (
    exact_channel_weights,
    exact_crossing_probability,
    exact_demand_means,
    exact_total_tracks,
)

__all__ = [
    "CAPACITY_SOURCES",
    "CongestionDistribution",
    "CongestionReport",
    "DEFAULT_CHANNEL_CAPACITY",
    "congestion_distribution",
    "congestion_report",
    "exact_channel_weights",
    "exact_crossing_probability",
    "exact_demand_means",
    "exact_total_tracks",
    "resolve_channel_capacity",
    "routability_score",
]
