"""Fraction-exact reference for the congestion model.

The production path (:mod:`repro.congestion.model`) runs in float64.
This module re-derives the same quantities in exact rational
arithmetic, which makes two properties *provable by evaluation* rather
than approximately testable:

* the per-channel crossing probability really is the probability of a
  disjoint union, so it lies in [0, 1] without clamping;
* the per-entry channel weights sum to exactly 1, so the allocated
  per-channel demand means telescope to exactly the module's total
  Eq. 2-3 track count — the congestion model redistributes the
  estimator's demand, it never invents or loses any.

The float path is then validated against these Fractions within a
stated tolerance (see ``tests/test_congestion.py``), the same
reference-oracle pattern as ``surjection_count_recurrence``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence, Tuple

from repro.errors import EstimationError
from repro.perf.kernels import tracks_for_net


def exact_crossing_probability(
    components: int, rows: int, channel: int
) -> Fraction:
    """The channel-k crossing probability as an exact rational.

    Same closed form as
    :func:`repro.perf.kernels.channel_crossing_probability`::

        P = 1 - (k/n)^D - ((n-k)/n)^D + (1/n)^D

    evaluated in :class:`~fractions.Fraction` arithmetic.  No clamp is
    applied — the value is in [0, 1] by construction, which the
    property suite asserts.
    """
    if components < 1:
        raise EstimationError(
            f"components must be >= 1, got {components}"
        )
    if rows < 1:
        raise EstimationError(f"rows must be >= 1, got {rows}")
    if not 0 <= channel <= rows:
        raise EstimationError(f"channel {channel} out of range 0..{rows}")
    if components < 2 or channel == 0:
        return Fraction(0)
    return (
        1
        - Fraction(channel, rows) ** components
        - Fraction(rows - channel, rows) ** components
        + Fraction(1, rows) ** components
    )


def exact_channel_weights(
    components: int, rows: int
) -> Tuple[Fraction, ...]:
    """Normalised channel-allocation weights for one net size.

    ``weights[k]`` is the fraction of a D-component net's track demand
    allocated to channel k; the normaliser is the expected number of
    channels the net uses, which is >= 1 for every D >= 2 (every
    routed net uses at least one channel with certainty), so the
    division is always defined.  The weights sum to exactly 1.
    """
    probabilities = [
        exact_crossing_probability(components, rows, channel)
        for channel in range(rows + 1)
    ]
    total = sum(probabilities)
    if total <= 0:
        raise EstimationError(
            f"net size {components} has zero channel mass at {rows} rows"
        )
    return tuple(p / total for p in probabilities)


def exact_demand_means(
    net_size_histogram: Sequence[Tuple[int, int]],
    rows: int,
    mode: str = "paper",
) -> Tuple[Fraction, ...]:
    """Exact per-channel expected track demand for a whole histogram.

    Each net size's integer Eq. 2-3 track count (``tracks_for_net``)
    is distributed over channels 0..rows by
    :func:`exact_channel_weights`; summing the result over channels
    recovers :func:`exact_total_tracks` *exactly* — the property the
    float path is tested against.
    """
    if rows < 1:
        raise EstimationError(f"rows must be >= 1, got {rows}")
    means = [Fraction(0)] * (rows + 1)
    for components, count in net_size_histogram:
        if components < 2:
            continue
        demand = count * tracks_for_net(components, rows, mode)
        for channel, weight in enumerate(
            exact_channel_weights(components, rows)
        ):
            means[channel] += demand * weight
    return tuple(means)


def exact_total_tracks(
    net_size_histogram: Sequence[Tuple[int, int]],
    rows: int,
    mode: str = "paper",
) -> int:
    """The module's total Eq. 2-3 track demand (the estimator's own
    per-module count): ``sum_D y_D * tracks_for_net(D, n)``."""
    if rows < 1:
        raise EstimationError(f"rows must be >= 1, got {rows}")
    return sum(
        count * tracks_for_net(components, rows, mode)
        for components, count in net_size_histogram
        if components >= 2
    )


__all__ = [
    "exact_channel_weights",
    "exact_crossing_probability",
    "exact_demand_means",
    "exact_total_tracks",
]
