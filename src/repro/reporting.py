"""Fixed-width table rendering for benchmark output and the CLI.

The benchmark harness prints the paper's tables; this module owns the
formatting so every table reads the same way.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table.

    Cells are stringified with :func:`format_cell`; numeric cells are
    right-aligned, text left-aligned.
    """
    formatted = [[format_cell(cell) for cell in row] for row in rows]
    columns = len(headers)
    for index, row in enumerate(formatted):
        if len(row) != columns:
            raise ValueError(
                f"row {index} has {len(row)} cells, expected {columns}"
            )
    widths = [
        max(len(headers[c]), *(len(row[c]) for row in formatted))
        if formatted
        else len(headers[c])
        for c in range(columns)
    ]
    numeric = [
        bool(rows) and all(_is_numeric(row[c]) for row in rows)
        for c in range(columns)
    ]

    def line(cells: Sequence[str]) -> str:
        parts = []
        for c, cell in enumerate(cells):
            parts.append(
                cell.rjust(widths[c]) if numeric[c] else cell.ljust(widths[c])
            )
        return "| " + " | ".join(parts) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out: List[str] = []
    if title:
        out.append(title)
    out.append(separator)
    out.append(line(list(headers)))
    out.append(separator)
    for row in formatted:
        out.append(line(row))
    out.append(separator)
    return "\n".join(out)


def format_cell(value: Any) -> str:
    """Human formatting: thousands separators for big numbers, trimmed
    floats, pass-through strings."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_percent(value: float, signed: bool = True) -> str:
    """Render a ratio as a percentage string (0.42 -> '+42%')."""
    sign = "+" if signed else ""
    return f"{value:{sign}.1%}"


def _is_numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)
