"""Float-backend error envelope: ``numpy`` vs ``exact``, committed.

The numpy backend's integer outputs are forced onto the exact
backend's values by its near-integer guard band — but that guarantee
only holds while the *raw* float64 error stays far inside the band.
This module measures that raw error (the pre-rounding Eq. 3
expectations and Eq. 10 feed-through means, the quantities the guard
band rounds) over the corpus and gates it against a committed bound,
so a numerical regression in the vectorized kernels is caught long
before it could flip an integer.

The measured envelope is persisted as ``VERIFY_backend_envelope.json``
(``mae verify --check backend_equivalence --backend-report``), the
float-backend sibling of ``VERIFY_envelope.json``: drift in the
vectorized arithmetic shows up as a reviewable diff, not a silent
shift.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import EstimatorConfig
from repro.errors import VerificationError
from repro.netlist.stats import ModuleStatistics
from repro.technology.process import ProcessDatabase
from repro.verify.corpus import CaseSpec

#: Artifact schema, bumped on shape changes.
BACKEND_ENVELOPE_SCHEMA_VERSION = 1

#: Row counts every case is probed at: the small-row regime where the
#: PMFs are short (and rounding is most consequential) plus a tail into
#: the paper's typical Table 2 range.
DEFAULT_PROBE_ROWS: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 8, 12)


@dataclasses.dataclass(frozen=True)
class BackendEnvelopeBounds:
    """Committed relative-error gates for the raw float64 kernels.

    Both errors are relative with an absolute floor of 1 (the
    quantities are expectations ``>= 0``; means can be 0 exactly).
    The bounds sit ~4 orders of magnitude above the error measured
    over the calibration corpus (~1e-13) and ~2 below the numpy
    backend's 1e-7 guard band, so a violation fires while the integer
    outputs are still provably safe.
    """

    max_spread_error: float = 1e-9
    max_mean_error: float = 1e-9

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class BackendEnvelopePoint:
    """One case's worst numpy-vs-exact raw kernel errors."""

    label: str
    devices: int
    net_sizes: int               # distinct D values in the histogram
    spread_error: float          # worst relative E(i) error, all rows
    mean_error: float            # worst relative feed-through mean error
    bit_identical: bool          # full estimates matched field-for-field
    within: bool

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def _relative(a: float, b: float) -> float:
    return abs(a - b) / max(1.0, abs(b))


def measure_backend_errors(
    stats: ModuleStatistics,
    rows_set: Sequence[int] = DEFAULT_PROBE_ROWS,
    mode: str = "paper",
) -> Tuple[float, float]:
    """Worst relative (spread, feed-through-mean) error of the numpy
    backend against exact over ``rows_set``, on the raw pre-rounding
    quantities.  Requires NumPy."""
    from repro.perf.backends import get_backend

    exact = get_backend("exact")
    vectorized = get_backend("numpy")
    histogram = stats.multi_component_nets
    spread_error = 0.0
    mean_error = 0.0
    for rows in rows_set:
        reference = exact.spread_expectations(histogram, rows, mode)
        measured = vectorized.spread_expectations(histogram, rows, mode)
        for expected, observed in zip(reference, measured):
            spread_error = max(spread_error, _relative(observed, expected))
        mean_error = max(
            mean_error,
            _relative(
                vectorized.feedthrough_mean_for_histogram(
                    histogram, rows, "general"
                ),
                exact.feedthrough_mean_for_histogram(
                    histogram, rows, "general"
                ),
            ),
        )
    return spread_error, mean_error


def measure_backend_point(
    spec: CaseSpec,
    process: ProcessDatabase,
    bounds: BackendEnvelopeBounds,
    rows_set: Sequence[int] = DEFAULT_PROBE_ROWS,
    config: Optional[EstimatorConfig] = None,
) -> BackendEnvelopePoint:
    """Measure one corpus case: raw kernel errors plus the full
    estimate bit-identity the guard band is supposed to deliver."""
    from repro.netlist.stats import scan_module
    from repro.perf.plan import compile_plan

    config = config or EstimatorConfig()
    module = spec.build()
    stats = scan_module(
        module,
        device_width=process.device_width,
        device_height=process.device_height,
        port_width=config.port_pitch_override or process.port_pitch,
        power_nets=config.power_nets,
    )
    spread_error, mean_error = measure_backend_errors(stats, rows_set)
    exact_plan = compile_plan(stats, process, config, backend="exact")
    numpy_plan = compile_plan(stats, process, config, backend="numpy")
    bit_identical = all(
        dataclasses.astuple(a) == dataclasses.astuple(b)
        for a, b in zip(
            exact_plan.evaluate_rows(rows_set),
            numpy_plan.evaluate_rows(rows_set),
        )
    )
    return BackendEnvelopePoint(
        label=spec.label,
        devices=module.device_count,
        net_sizes=len(stats.multi_component_nets),
        spread_error=spread_error,
        mean_error=mean_error,
        bit_identical=bit_identical,
        within=(
            bit_identical
            and spread_error <= bounds.max_spread_error
            and mean_error <= bounds.max_mean_error
        ),
    )


def measure_backend_envelope(
    specs: Sequence[CaseSpec],
    processes: Dict[str, ProcessDatabase],
    bounds: Optional[BackendEnvelopeBounds] = None,
    rows_set: Sequence[int] = DEFAULT_PROBE_ROWS,
) -> dict:
    """The full envelope record over ``specs`` (standard-cell cases
    only — the full-custom estimator never touches the row-spread
    kernels)."""
    bounds = bounds or BackendEnvelopeBounds()
    points: List[BackendEnvelopePoint] = []
    for spec in specs:
        if spec.methodology != "standard-cell":
            continue
        points.append(
            measure_backend_point(
                spec, processes[spec.methodology], bounds, rows_set
            )
        )
    if not points:
        raise VerificationError(
            "backend envelope: no standard-cell cases in the corpus slice"
        )
    return {
        "schema_version": BACKEND_ENVELOPE_SCHEMA_VERSION,
        "benchmark": "backend_envelope",
        "bounds": bounds.to_dict(),
        "probe_rows": list(rows_set),
        "guard_band": _guard_band(),
        "cases": [point.to_dict() for point in points],
        "summary": {
            "cases": len(points),
            "violations": sum(1 for point in points if not point.within),
            "bit_identical": sum(
                1 for point in points if point.bit_identical
            ),
            "max_spread_error": max(p.spread_error for p in points),
            "max_mean_error": max(p.mean_error for p in points),
        },
    }


def _guard_band() -> dict:
    from repro.perf.backends.numpy64 import (
        NEAR_INTEGER_GUARD,
        ROUND_EPSILON,
    )

    return {"round_epsilon": ROUND_EPSILON, "window": NEAR_INTEGER_GUARD}


def save_backend_envelope(record: dict, path: str) -> None:
    """Write the envelope artifact (sorted keys, trailing newline — the
    committed-diff format)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_backend_envelope(path: str) -> dict:
    """Read an envelope artifact back, validating the schema version."""
    with open(path, "r", encoding="utf-8") as handle:
        record = json.load(handle)
    if record.get("schema_version") != BACKEND_ENVELOPE_SCHEMA_VERSION:
        raise VerificationError(
            f"backend envelope {path!r}: schema "
            f"{record.get('schema_version')!r} != "
            f"{BACKEND_ENVELOPE_SCHEMA_VERSION}"
        )
    return record
