"""Accuracy envelopes: estimator vs layout-oracle error bounds.

The paper's own validation is two tables of relative errors —
full-custom estimates within -17 %..+26 % of manual layouts (Table 1),
standard-cell estimates +42 %..+70 % above TimberWolf (Table 2, an
upper bound by construction).  This module generalises that comparison
from a handful of fixed designs to the whole randomized corpus: every
case is estimated *and* laid out (``repro.layout`` shares no equations
with ``repro.core``), the relative error ``estimate/oracle - 1`` is
recorded, and the per-case error must land inside a configurable
:class:`EnvelopeBounds` — the drift gate that catches a silently
broken model even when every bit-identity invariant still holds.

The default bounds were calibrated empirically over 220 corpus cases
(``draw_corpus`` at several base seeds) against the pinned
verification schedule and then widened by a safety margin; they are
deliberately looser than the paper's table ranges because the corpus
spans smaller and stranger modules than the paper's hand-picked
designs, and the fast oracle schedule routes less tightly than
TimberWolf.  docs/ORACLES.md records the calibration run.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.core.config import EstimatorConfig
from repro.core.full_custom import estimate_full_custom
from repro.core.standard_cell import estimate_standard_cell
from repro.errors import VerificationError
from repro.layout.annealing import AnnealingSchedule
from repro.layout.full_custom_flow import layout_full_custom
from repro.layout.standard_cell_flow import layout_standard_cell
from repro.netlist.model import Module
from repro.technology.process import ProcessDatabase
from repro.verify.corpus import CaseSpec


def verification_schedule() -> AnnealingSchedule:
    """The pinned oracle annealing budget for verification runs.

    Small enough that a 25-case sweep finishes in CI smoke time, large
    enough that oracle areas are stable; the envelope bounds are
    calibrated against exactly this schedule, so changing it means
    recalibrating (docs/ORACLES.md).
    """
    return AnnealingSchedule(moves_per_stage=30, stages=6, cooling=0.8)


@dataclasses.dataclass(frozen=True)
class EnvelopeBounds:
    """Per-methodology relative-error gates (``estimate/oracle - 1``).

    Standard-cell estimates are an upper bound, so that envelope sits
    mostly above zero (observed 0.00..+3.30 over the calibration
    corpus); the full-custom oracle inflates its bounding box for
    wiring the estimator's minimum-area model ignores, so that envelope
    sits below zero (observed -0.32..-0.14).
    """

    sc_low: float = -0.40
    sc_high: float = 4.00
    fc_low: float = -0.60
    fc_high: float = 0.40

    def range_for(self, methodology: str) -> tuple:
        if methodology == "standard-cell":
            return (self.sc_low, self.sc_high)
        if methodology == "full-custom":
            return (self.fc_low, self.fc_high)
        raise VerificationError(f"unknown methodology {methodology!r}")

    def contains(self, methodology: str, error: float) -> bool:
        low, high = self.range_for(methodology)
        return low <= error <= high

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class EnvelopePoint:
    """One corpus case's estimator-vs-oracle comparison."""

    label: str
    methodology: str
    devices: int
    rows: int                    # 0 for full-custom
    estimate_area: float
    oracle_area: float
    error: float                 # estimate/oracle - 1
    within: bool

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def measure_case(
    spec: CaseSpec,
    module: Module,
    process: ProcessDatabase,
    bounds: EnvelopeBounds,
    schedule: Optional[AnnealingSchedule] = None,
    config: Optional[EstimatorConfig] = None,
) -> EnvelopePoint:
    """Estimate and lay out one case; record its relative error.

    Standard-cell oracles run at the estimator's own Section 5 row
    choice (clamped to the device count — the placer needs at least one
    cell per row), so estimate and layout describe the same aspect
    decision, exactly as Table 2 compares like rows against like.
    """
    schedule = schedule or verification_schedule()
    config = config or EstimatorConfig()
    if spec.methodology == "standard-cell":
        estimate = estimate_standard_cell(module, process, config)
        rows = min(estimate.rows, module.device_count)
        if rows != estimate.rows:
            estimate = estimate_standard_cell(
                module, process, config.with_rows(rows)
            )
        oracle = layout_standard_cell(
            module, process, rows=rows, seed=spec.seed, schedule=schedule,
            config=config,
        )
    else:
        estimate = estimate_full_custom(module, process, config)
        rows = 0
        oracle = layout_full_custom(
            module, process, seed=spec.seed, schedule=schedule,
            config=config,
        )
    if oracle.area <= 0:
        raise VerificationError(
            f"case {spec.label}: oracle produced non-positive area "
            f"{oracle.area}"
        )
    error = estimate.area / oracle.area - 1.0
    return EnvelopePoint(
        label=spec.label,
        methodology=spec.methodology,
        devices=module.device_count,
        rows=rows,
        estimate_area=estimate.area,
        oracle_area=oracle.area,
        error=error,
        within=bounds.contains(spec.methodology, error),
    )


def summarize(points: Sequence[EnvelopePoint],
              bounds: EnvelopeBounds) -> Dict[str, dict]:
    """Aggregate error distribution per methodology, Table 1/2 style."""
    summary: Dict[str, dict] = {}
    for methodology in ("standard-cell", "full-custom"):
        errors: List[float] = [
            point.error for point in points
            if point.methodology == methodology
        ]
        low, high = bounds.range_for(methodology)
        entry = {
            "cases": len(errors),
            "bounds": {"low": low, "high": high},
            "violations": sum(
                1 for point in points
                if point.methodology == methodology and not point.within
            ),
        }
        if errors:
            entry.update(
                min_error=min(errors),
                max_error=max(errors),
                mean_error=sum(errors) / len(errors),
            )
        summary[methodology] = entry
    return summary
