"""Equivalence invariants and metamorphic properties.

Three perf-heavy PRs left the estimator with strong claims — compiled
plans are "bit-identical" to the direct path, pooled batches are
"identical at any job count", caches "never change results", tracing is
"zero cost *and* zero effect" — that were each enforced by a handful of
hand-written tests.  This module turns every claim into a reusable
check over an arbitrary module, so the corpus driver can assert them
across the whole randomized design population.

Two kinds of checks:

* **Equivalence invariants** compare two computations that must agree
  *bit for bit* (exact ``==`` on every result field, floats included):
  plan vs direct, caches on vs :func:`caches_disabled`, trace-on vs
  trace-off, batch ``jobs=1`` vs ``jobs=N``, and a disk-cache
  round-trip.
* **Metamorphic properties** relate outputs across *related inputs*
  where no oracle exists: area is monotone in device count, the row
  sweep is not wildly non-convex, the shared track model never exceeds
  the paper's one-net-per-track upper bound, lowering the sharing
  factor never increases area, and the "paper" and "exact" row-spread
  modes agree (bit-identically when every net fits in the row count,
  else to relative tolerance — the renormalised Eq. 2 is algebraically
  the exact PMF, differing only in summation order).

Every check returns a :class:`CheckResult`; nothing raises on a
failed invariant — the runner decides what to shrink and persist.
"""

from __future__ import annotations

import dataclasses
import math
import os
import random
import tempfile
import zlib
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.config import EstimatorConfig
from repro.core.full_custom import estimate_full_custom
from repro.core.standard_cell import (
    estimate_standard_cell,
    estimate_standard_cell_from_stats,
)
from repro.incremental.editgen import random_mutation
from repro.incremental.engine import IncrementalEstimator
from repro.netlist.model import Module
from repro.netlist.stats import scan_module
from repro.obs.trace import Tracer, use_tracer
from repro.perf.batch import estimate_batch
from repro.perf.diskcache import load_kernel_caches, save_kernel_caches
from repro.perf.kernels import (
    caches_disabled,
    clear_kernel_caches,
    install_kernel_caches,
    snapshot_kernel_caches,
)
from repro.perf.plan import get_plan
from repro.technology.process import ProcessDatabase


@dataclasses.dataclass(frozen=True)
class CheckResult:
    """Outcome of one named check on one module."""

    name: str
    passed: bool
    detail: str = ""

    def __bool__(self) -> bool:
        return self.passed


def _fields(estimate) -> tuple:
    """Every result field, for exact (bit-identical) comparison."""
    return dataclasses.astuple(estimate)


def _mismatch(a, b) -> str:
    """Name the first differing field of two result dataclasses."""
    for field in dataclasses.fields(a):
        left = getattr(a, field.name)
        right = getattr(b, field.name)
        if left != right:
            return f"{field.name}: {left!r} != {right!r}"
    return "results differ"


def _estimate(module: Module, process: ProcessDatabase,
              methodology: str, config: Optional[EstimatorConfig] = None):
    if methodology == "standard-cell":
        return estimate_standard_cell(module, process, config)
    return estimate_full_custom(module, process, config)


def _scan(module: Module, process: ProcessDatabase,
          config: EstimatorConfig):
    return scan_module(
        module,
        device_width=process.device_width,
        device_height=process.device_height,
        port_width=config.port_pitch_override or process.port_pitch,
        power_nets=config.power_nets,
    )


# ----------------------------------------------------------------------
# equivalence invariants
# ----------------------------------------------------------------------
def check_plan_vs_direct(
    module: Module,
    process: ProcessDatabase,
    config: Optional[EstimatorConfig] = None,
) -> CheckResult:
    """A compiled :class:`~repro.perf.plan.EstimationPlan` evaluates
    bit-identically to the direct estimator facade."""
    config = config or EstimatorConfig()
    direct = estimate_standard_cell(module, process, config)
    stats = _scan(module, process, config)
    planned = get_plan(stats, process, config).evaluate(config.rows)
    if _fields(direct) == _fields(planned):
        return CheckResult("plan_vs_direct", True)
    return CheckResult(
        "plan_vs_direct", False,
        f"plan diverges from direct path ({_mismatch(direct, planned)})",
    )


def check_caches_identity(
    module: Module,
    process: ProcessDatabase,
    methodology: str = "standard-cell",
    config: Optional[EstimatorConfig] = None,
) -> CheckResult:
    """Warm kernel caches vs :func:`caches_disabled` recomputation."""
    warm = _estimate(module, process, methodology, config)
    with caches_disabled():
        cold = _estimate(module, process, methodology, config)
    if _fields(warm) == _fields(cold):
        return CheckResult("caches_identity", True)
    return CheckResult(
        "caches_identity", False,
        f"cache hit changed the result ({_mismatch(warm, cold)})",
    )


def check_trace_identity(
    module: Module,
    process: ProcessDatabase,
    methodology: str = "standard-cell",
    config: Optional[EstimatorConfig] = None,
) -> CheckResult:
    """Estimating under a collecting tracer is observation, not
    perturbation: results match the untraced path bit for bit."""
    untraced = _estimate(module, process, methodology, config)
    with use_tracer(Tracer()):
        traced = _estimate(module, process, methodology, config)
    if _fields(untraced) == _fields(traced):
        return CheckResult("trace_identity", True)
    return CheckResult(
        "trace_identity", False,
        f"tracing changed the result ({_mismatch(untraced, traced)})",
    )


def check_batch_jobs(
    modules: Sequence[Module],
    process: ProcessDatabase,
    jobs: int = 2,
    config: Optional[EstimatorConfig] = None,
) -> CheckResult:
    """``estimate_batch`` at ``jobs=1`` vs ``jobs=N``: same estimates,
    element for element, in submission order."""
    config = config or EstimatorConfig()
    serial = estimate_batch(list(modules), process, config, jobs=1)
    pooled = estimate_batch(list(modules), process, config, jobs=jobs)
    if len(serial) != len(pooled):
        return CheckResult(
            "batch_jobs", False,
            f"result counts differ: {len(serial)} vs {len(pooled)}",
        )
    for one, many in zip(serial, pooled):
        if _fields(one.estimate) != _fields(many.estimate):
            return CheckResult(
                "batch_jobs", False,
                f"module {one.task.module_name!r}: jobs=1 vs jobs={jobs} "
                f"({_mismatch(one.estimate, many.estimate)})",
            )
    return CheckResult("batch_jobs", True)


def check_disk_roundtrip(
    module: Module,
    process: ProcessDatabase,
    config: Optional[EstimatorConfig] = None,
) -> CheckResult:
    """Kernel caches survive a save → clear → load cycle with no effect
    on results, and the reloaded entries equal the saved snapshot.

    The round-trip runs on a fresh cache warmed only by this module, so
    the check exercises exactly the entries under test and unrelated
    process-wide cache contents (which may hold huge combinatorial
    integers that JSON cannot print) never leak into the file.
    """
    ambient = snapshot_kernel_caches()
    handle, path = tempfile.mkstemp(prefix="mae-verify-", suffix=".json")
    os.close(handle)
    try:
        try:
            clear_kernel_caches()
            before = estimate_standard_cell(module, process, config)
            saved = snapshot_kernel_caches()
            save_kernel_caches(path)
            clear_kernel_caches()
            load_kernel_caches(path)
            after = estimate_standard_cell(module, process, config)
            reloaded = snapshot_kernel_caches()
        finally:
            # Never leave the process cold because the check failed.
            install_kernel_caches(ambient)
    finally:
        os.unlink(path)
    if reloaded["kernels"] != saved["kernels"]:
        return CheckResult(
            "disk_roundtrip", False,
            "reloaded kernel entries differ from the saved snapshot",
        )
    if _fields(before) != _fields(after):
        return CheckResult(
            "disk_roundtrip", False,
            f"round-trip changed the estimate ({_mismatch(before, after)})",
        )
    return CheckResult("disk_roundtrip", True)


def check_incremental_equivalence(
    module: Module,
    process: ProcessDatabase,
    config: Optional[EstimatorConfig] = None,
    steps: int = 12,
) -> CheckResult:
    """The incremental engine stays bit-identical to a from-scratch
    rescan under a deterministic random edit sequence.

    After every edit, both the maintained statistics snapshot and the
    estimate served through the version-checked plan cache must equal
    what a full rescan of the mutated netlist produces — field for
    field, floats compared exactly.  The seed derives from the module's
    name and size, so a failing case replays from its corpus spec.
    """
    config = config or EstimatorConfig()
    seed = zlib.crc32(module.name.encode("utf-8")) ^ module.device_count
    rng = random.Random(seed)
    engine = IncrementalEstimator(module, process, config)
    for step in range(steps):
        mutation = random_mutation(engine.module, rng, config.power_nets)
        engine.apply(mutation)
        fresh = engine.rescan()
        if engine.statistics() != fresh:
            return CheckResult(
                "incremental_equivalence", False,
                f"step {step} ({mutation.kind}): maintained statistics "
                "diverge from a rescan",
            )
        incremental = engine.estimate()
        direct = estimate_standard_cell_from_stats(fresh, process, config)
        if _fields(incremental) != _fields(direct):
            return CheckResult(
                "incremental_equivalence", False,
                f"step {step} ({mutation.kind}): "
                f"{_mismatch(incremental, direct)}",
            )
    return CheckResult("incremental_equivalence", True)


# ----------------------------------------------------------------------
# metamorphic properties
# ----------------------------------------------------------------------
def check_shared_within_upper_bound(
    module: Module,
    process: ProcessDatabase,
    config: Optional[EstimatorConfig] = None,
) -> CheckResult:
    """The Section 7 shared-track model never exceeds the paper's
    one-net-per-track upper bound."""
    config = config or EstimatorConfig()
    upper = estimate_standard_cell(
        module, process, config.with_(track_model="upper-bound")
    )
    shared = estimate_standard_cell(
        module, process,
        config.with_(track_model="shared", rows=upper.rows),
    )
    if shared.tracks <= upper.tracks:
        return CheckResult("shared_within_upper_bound", True)
    return CheckResult(
        "shared_within_upper_bound", False,
        f"shared model used {shared.tracks} tracks, upper bound is "
        f"{upper.tracks}",
    )


def check_sharing_factor_monotone(
    module: Module,
    process: ProcessDatabase,
    config: Optional[EstimatorConfig] = None,
) -> CheckResult:
    """Lowering ``track_sharing_factor`` (the A1 ablation) never
    increases area at a fixed row count."""
    config = config or EstimatorConfig()
    full = estimate_standard_cell(
        module, process, config.with_(track_sharing_factor=1.0)
    )
    reduced = estimate_standard_cell(
        module, process,
        config.with_(track_sharing_factor=0.6, rows=full.rows),
    )
    if reduced.area <= full.area:
        return CheckResult("sharing_factor_monotone", True)
    return CheckResult(
        "sharing_factor_monotone", False,
        f"factor 0.6 area {reduced.area:.1f} exceeds factor 1.0 area "
        f"{full.area:.1f}",
    )


def check_spread_mode_agreement(
    module: Module,
    process: ProcessDatabase,
    config: Optional[EstimatorConfig] = None,
    rel_tol: float = 1e-9,
) -> CheckResult:
    """The "paper" and "exact" row-spread modes agree.

    Renormalising Eq. 2 cancels its truncated exponent, so the two modes
    are the same distribution: bit-identical whenever every net fits in
    the row count (D <= n, where the modes share a code path), and equal
    to floating-point tolerance otherwise.
    """
    config = config or EstimatorConfig()
    paper = estimate_standard_cell(
        module, process, config.with_(row_spread_mode="paper")
    )
    exact = estimate_standard_cell(
        module, process,
        config.with_(row_spread_mode="exact", rows=paper.rows),
    )
    stats = _scan(module, process, config)
    max_net = max(
        (size for size, _ in stats.multi_component_nets), default=0
    )
    if max_net <= paper.rows:
        if _fields(paper) == _fields(exact):
            return CheckResult("spread_mode_agreement", True)
        return CheckResult(
            "spread_mode_agreement", False,
            f"modes diverge with every net inside {paper.rows} rows "
            f"({_mismatch(paper, exact)})",
        )
    if paper.tracks == exact.tracks and math.isclose(
        paper.area, exact.area, rel_tol=rel_tol
    ):
        return CheckResult("spread_mode_agreement", True)
    return CheckResult(
        "spread_mode_agreement", False,
        f"paper mode {paper.tracks} tracks / area {paper.area:.3f} vs "
        f"exact mode {exact.tracks} / {exact.area:.3f}",
    )


def check_row_sweep_sanity(
    module: Module,
    process: ProcessDatabase,
    config: Optional[EstimatorConfig] = None,
    max_rows: int = 10,
    wiggle: float = 0.08,
) -> CheckResult:
    """The area-vs-rows curve is unimodal up to rounding wiggle.

    The paper observes "the area estimate decreased as the number of
    rows increased" over its small sweeps; with feed-through cost the
    curve can turn back up, and the ceil() on tracks and feed-throughs
    puts small steps on it, but it must not oscillate beyond that: up
    to the global minimum every rise is bounded by ``wiggle`` (relative),
    and after it every drop is.

    The sweep starts at three rows: below that no interior row exists,
    the feed-through count is identically zero, and the onset of
    feed-through cost at rows = 3 is a genuine (documented) step in the
    model, not an oscillation.
    """
    config = config or EstimatorConfig()
    limit = min(max_rows, module.device_count)
    first = min(3, limit)
    areas = [
        estimate_standard_cell(
            module, process, config.with_rows(rows)
        ).area
        for rows in range(first, limit + 1)
    ]
    pivot = areas.index(min(areas))
    for i in range(len(areas) - 1):
        if i < pivot and areas[i + 1] > areas[i] * (1.0 + wiggle):
            return CheckResult(
                "row_sweep_sanity", False,
                f"area rises {areas[i]:.1f} -> {areas[i + 1]:.1f} at rows "
                f"{first + i}->{first + i + 1}, before the minimum at rows "
                f"{first + pivot}: {[round(a, 1) for a in areas]}",
            )
        if i >= pivot and areas[i + 1] < areas[i] * (1.0 - wiggle):
            return CheckResult(
                "row_sweep_sanity", False,
                f"area drops {areas[i]:.1f} -> {areas[i + 1]:.1f} at rows "
                f"{first + i}->{first + i + 1}, after the minimum at rows "
                f"{first + pivot}: {[round(a, 1) for a in areas]}",
            )
    return CheckResult("row_sweep_sanity", True)


def check_area_monotone_in_devices(
    small: Module,
    large: Module,
    process: ProcessDatabase,
    methodology: str = "standard-cell",
    config: Optional[EstimatorConfig] = None,
) -> CheckResult:
    """A module that strictly contains another (same construction, more
    devices) never gets a smaller area estimate.

    For standard cells the comparison is pinned to a common row count —
    Eq. 12 trades rows against tracks, so comparing the Section 5 row
    choices of two different modules would mix two effects.
    """
    config = config or EstimatorConfig()
    if small.device_count >= large.device_count:
        return CheckResult(
            "area_monotone_in_devices", False,
            f"bad pair: {small.device_count} !< {large.device_count} devices",
        )
    if methodology == "standard-cell":
        rows = config.rows or min(4, small.device_count)
        pinned = config.with_rows(rows)
        area_small = estimate_standard_cell(small, process, pinned).area
        area_large = estimate_standard_cell(large, process, pinned).area
    else:
        area_small = estimate_full_custom(small, process, config).area
        area_large = estimate_full_custom(large, process, config).area
    if area_large >= area_small:
        return CheckResult("area_monotone_in_devices", True)
    return CheckResult(
        "area_monotone_in_devices", False,
        f"{large.device_count} devices estimate {area_large:.1f} below "
        f"{small.device_count}-device estimate {area_small:.1f}",
    )


def check_backend_equivalence(
    module: Module,
    process: ProcessDatabase,
    config: Optional[EstimatorConfig] = None,
) -> CheckResult:
    """The ``numpy`` backend agrees with ``exact``: full estimates
    bit-identically (its guard band forces every integer output onto
    the exact values, and every float field derives from those), and
    the raw pre-rounding kernels within the committed
    :class:`~repro.verify.backend_envelope.BackendEnvelopeBounds`.

    Trivially satisfied (with a note) on hosts without NumPy — there is
    no float backend to diverge.
    """
    from repro.perf.backends import get_backend
    from repro.verify.backend_envelope import (
        BackendEnvelopeBounds,
        DEFAULT_PROBE_ROWS,
        measure_backend_errors,
    )

    if not get_backend("numpy").available:
        return CheckResult(
            "backend_equivalence", True,
            "numpy backend unavailable; exact-only host",
        )
    config = config or EstimatorConfig()
    stats = _scan(module, process, config)
    rows_set = DEFAULT_PROBE_ROWS
    if config.rows is not None and config.rows not in rows_set:
        rows_set = rows_set + (config.rows,)
    exact_plan = get_plan(stats, process, config, backend="exact")
    numpy_plan = get_plan(stats, process, config, backend="numpy")
    for rows, reference, measured in zip(
        rows_set,
        exact_plan.evaluate_rows(rows_set),
        numpy_plan.evaluate_rows(rows_set),
    ):
        if _fields(reference) != _fields(measured):
            return CheckResult(
                "backend_equivalence", False,
                f"numpy diverges from exact at rows={rows} "
                f"({_mismatch(reference, measured)})",
            )
    bounds = BackendEnvelopeBounds()
    spread_error, mean_error = measure_backend_errors(stats, rows_set)
    if spread_error > bounds.max_spread_error:
        return CheckResult(
            "backend_equivalence", False,
            f"raw spread expectation error {spread_error:.3e} exceeds "
            f"envelope bound {bounds.max_spread_error:.0e}",
        )
    if mean_error > bounds.max_mean_error:
        return CheckResult(
            "backend_equivalence", False,
            f"raw feed-through mean error {mean_error:.3e} exceeds "
            f"envelope bound {bounds.max_mean_error:.0e}",
        )
    return CheckResult("backend_equivalence", True)


def check_serve_equivalence(
    module: Module,
    process: ProcessDatabase,
    config: Optional[EstimatorConfig] = None,
    steps: int = 4,
) -> CheckResult:
    """Estimates served over live ``mae serve`` HTTP are bit-identical
    to direct calls.

    Spins an in-process server, ships the module as Verilog source
    (``POST /sessions`` — so the writer/parser round-trip is under
    test too), then compares every served estimate — the default-rows
    estimate, a multi-row request, and a re-estimate after each of
    ``steps`` seeded ECO edits — against
    :func:`~repro.core.standard_cell.estimate_standard_cell_from_stats`
    on a client-side mirror of the session's module.  Served payloads
    decode through :func:`repro.service.wire.estimate_from_jsonable`;
    comparison is exact on every field, floats included (JSON floats
    round-trip exactly).  The edit seed derives from the module, so a
    failing case replays from its corpus spec.
    """
    import json
    import urllib.request

    from repro.incremental.mutations import mutations_to_jsonable
    from repro.netlist.writers import write_verilog
    from repro.service.engine import EstimationEngine, ServiceConfig
    from repro.service.server import start_server
    from repro.service.wire import estimate_from_jsonable

    config = config or EstimatorConfig()
    name = "serve_equivalence"
    server = start_server(EstimationEngine(ServiceConfig()))
    # The session must estimate under *this* process instance, which
    # may not be a builtin tech: register it under a private name.
    server.processes["verify-process"] = process

    def post(path: str, payload: dict) -> dict:
        request = urllib.request.Request(
            server.base_url + path,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            return json.loads(response.read())

    def served_vs_direct(payload: dict, mirror: Module,
                         case_config: EstimatorConfig, label: str):
        served = estimate_from_jsonable(payload)
        direct = estimate_standard_cell_from_stats(
            _scan(mirror, process, case_config), process, case_config
        )
        if _fields(served) != _fields(direct):
            return CheckResult(
                name, False, f"{label}: {_mismatch(served, direct)}"
            )
        return None

    mirror = module.copy()
    probe_rows = (2, 3, 5)
    try:
        body = post("/sessions", {
            "source": write_verilog(module),
            "format": "verilog",
            "tech": "verify-process",
            "config": _config_jsonable(config),
        })
        session_id = body["session"]
        failure = served_vs_direct(
            post(f"/sessions/{session_id}/estimate", {})["estimate"],
            mirror, config, "initial estimate",
        )
        if failure is not None:
            return failure
        multi = post(
            f"/sessions/{session_id}/estimate", {"rows": list(probe_rows)}
        )["estimates"]
        for rows, payload in zip(probe_rows, multi):
            failure = served_vs_direct(
                payload, mirror, config.with_rows(rows), f"rows={rows}"
            )
            if failure is not None:
                return failure
        seed = zlib.crc32(module.name.encode("utf-8")) ^ (
            module.device_count << 1
        )
        rng = random.Random(seed)
        for step in range(steps):
            mutation = random_mutation(mirror, rng, config.power_nets)
            body = post(f"/sessions/{session_id}/edits", {
                "edits": mutations_to_jsonable([mutation]),
            })
            mutation.apply(mirror)
            failure = served_vs_direct(
                body["estimate"], mirror, config,
                f"after edit {step} ({mutation.kind})",
            )
            if failure is not None:
                return failure
    finally:
        server.stop(drain=True)
    return CheckResult(name, True)


def check_portfolio_determinism(
    spec,
    process: ProcessDatabase,
    steps: int = 40,
) -> CheckResult:
    """The portfolio optimizer is a pure function of (design, config).

    Spec-level (it needs the hierarchical *design*, not the flattened
    module): rebuilds the ``hier`` case's design from its recipe and
    asserts three identities over a short race — a same-seed rerun
    replays bit-identically, a resume from a mid-run checkpoint
    continues the identical trajectory to the identical winner, and
    the serial rescan engine walks the same path as the compiled hot
    path (trajectory hashes, winner, best cost, and best row
    assignment all compared exactly).
    """
    from repro.floorplan.portfolio import (
        PortfolioConfig,
        load_checkpoint,
        run_portfolio,
    )
    from repro.workloads.designs import generate_design

    name = "portfolio_determinism"
    design = generate_design(
        int(spec.param("modules")), seed=spec.seed, name=spec.label
    )
    config = PortfolioConfig(
        steps=steps, seed=spec.seed,
        checkpoint_every=max(1, steps // 2), spot_checks=2,
    )

    def signature(result):
        return (
            result.trajectory_hashes,
            result.winner,
            result.best_cost,
            result.best_rows,
        )

    first = run_portfolio(design, process, config)
    second = run_portfolio(design, process, config)
    if signature(first) != signature(second):
        return CheckResult(
            name, False,
            "same-seed reruns diverge: "
            f"{first.trajectory_hashes} != {second.trajectory_hashes}",
        )
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = os.path.join(tmp, "resume.json")
        run_portfolio(
            design, process, config,
            checkpoint_path=ckpt, stop_after=max(1, steps // 2),
        )
        resumed = run_portfolio(
            design, process, config, resume=load_checkpoint(ckpt)
        )
    if signature(resumed) != signature(first):
        return CheckResult(
            name, False,
            "resume-from-checkpoint diverges from the one-shot run: "
            f"{resumed.trajectory_hashes} != {first.trajectory_hashes}",
        )
    serial = run_portfolio(design, process, config, engine="serial")
    if signature(serial) != signature(first):
        return CheckResult(
            name, False,
            "serial and portfolio engines walk different trajectories: "
            f"{serial.trajectory_hashes} != {first.trajectory_hashes}",
        )
    weighted_config = dataclasses.replace(config, routability_weight=0.8)
    weighted = run_portfolio(design, process, weighted_config)
    weighted_serial = run_portfolio(
        design, process, weighted_config, engine="serial"
    )
    if signature(weighted) != signature(weighted_serial):
        return CheckResult(
            name, False,
            "routability-weighted runs diverge between engines: "
            f"{weighted.trajectory_hashes} != "
            f"{weighted_serial.trajectory_hashes}",
        )
    return CheckResult(name, True)


def _config_jsonable(config: EstimatorConfig) -> dict:
    """An :class:`EstimatorConfig` as the service's ``config`` wire
    object (the fields ``repro.service.server.CONFIG_FIELDS`` lists)."""
    from repro.service.server import CONFIG_FIELDS

    payload = {
        field: getattr(config, field) for field in CONFIG_FIELDS
    }
    payload["power_nets"] = list(payload["power_nets"])
    return payload


def check_frontend_accuracy(
    envelope_path: Optional[str] = None,
) -> CheckResult:
    """The committed frontend calibration still holds.

    Corpus-independent (it runs once per sweep, like the portfolio
    gate): refits the per-library correction factor over the committed
    golden BLIF/Liberty fixtures and compares against the committed
    ``VERIFY_frontend_envelope.json`` — the fixture set must match,
    the refitted factor must agree to float precision (the fit is
    deterministic arithmetic over committed inputs), and every
    refitted residual must sit inside the committed accuracy band.
    Any drift in parser, estimator, or fixtures fails the gate with
    the offending designs named; ``mae calibrate`` re-fits and
    rewrites the artifact when a change is intentional.
    """
    from repro.errors import FrontendError, VerificationError
    from repro.frontend.calibrate import (
        default_envelope_path,
        load_frontend_envelope,
        measure_frontend_envelope,
    )

    name = "frontend_accuracy"
    path = envelope_path or str(default_envelope_path())
    try:
        committed = load_frontend_envelope(path)
        fresh = measure_frontend_envelope(
            pdn_margin=committed["pdn_margin"],
            bounds=(committed["bounds"]["low"],
                    committed["bounds"]["high"]),
        )
    except (KeyError, FrontendError, VerificationError) as exc:
        return CheckResult(
            name, False,
            f"cannot evaluate the committed envelope: {exc} "
            "(run 'mae calibrate' to regenerate it)",
        )
    committed_designs = [case["design"] for case in committed["cases"]]
    fresh_designs = [case["design"] for case in fresh["cases"]]
    if committed_designs != fresh_designs:
        return CheckResult(
            name, False,
            f"fixture set drifted from the committed envelope: "
            f"committed {committed_designs}, on disk {fresh_designs}",
        )
    factor_drift = abs(fresh["factor"] - committed["factor"])
    if factor_drift > 1e-9 * max(1.0, abs(committed["factor"])):
        return CheckResult(
            name, False,
            f"refitted correction factor {fresh['factor']!r} drifted "
            f"from the committed {committed['factor']!r}",
        )
    violations = [
        f"{case['design']} (residual {case['residual']:+.4f})"
        for case in fresh["cases"] if not case["within"]
    ]
    if violations:
        bounds = committed["bounds"]
        return CheckResult(
            name, False,
            f"residual(s) outside the committed accuracy band "
            f"[{bounds['low']:+.4f}, {bounds['high']:+.4f}]: "
            + ", ".join(violations),
        )
    return CheckResult(name, True)


#: Per-module equivalence checks by methodology, for the runner.
EQUIVALENCE_CHECKS: Tuple[Tuple[str, str, Callable], ...] = (
    ("plan_vs_direct", "standard-cell", check_plan_vs_direct),
    ("caches_identity", "*", check_caches_identity),
    ("trace_identity", "*", check_trace_identity),
    ("incremental_equivalence", "standard-cell",
     check_incremental_equivalence),
    ("backend_equivalence", "standard-cell", check_backend_equivalence),
    ("serve_equivalence", "standard-cell", check_serve_equivalence),
)

#: Per-module metamorphic checks (standard-cell only; the full-custom
#: estimator has no rows/tracks knobs to relate).
METAMORPHIC_CHECKS: Tuple[Tuple[str, Callable], ...] = (
    ("shared_within_upper_bound", check_shared_within_upper_bound),
    ("sharing_factor_monotone", check_sharing_factor_monotone),
    ("spread_mode_agreement", check_spread_mode_agreement),
    ("row_sweep_sanity", check_row_sweep_sanity),
)


def run_module_checks(
    module: Module,
    process: ProcessDatabase,
    methodology: str,
    config: Optional[EstimatorConfig] = None,
) -> List[CheckResult]:
    """All per-module checks that apply to ``methodology``."""
    results: List[CheckResult] = []
    for name, scope, check in EQUIVALENCE_CHECKS:
        if scope in ("*", methodology):
            if scope == "*":
                results.append(check(module, process, methodology, config))
            else:
                results.append(check(module, process, config))
    if methodology == "standard-cell":
        for _, check in METAMORPHIC_CHECKS:
            results.append(check(module, process, config))
    return results
