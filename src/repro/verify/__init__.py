"""Differential verification: estimator vs oracles, at corpus scale.

The harness closes the loop the paper itself drew — analytic estimates
checked against independently produced layouts — and extends it with
the equivalence and metamorphic invariants accumulated by the perf
work.  See :mod:`repro.verify.runner` for the stage pipeline and
``mae verify`` for the CLI front door.
"""

from repro.verify.backend_envelope import (
    BACKEND_ENVELOPE_SCHEMA_VERSION,
    BackendEnvelopeBounds,
    BackendEnvelopePoint,
    load_backend_envelope,
    measure_backend_envelope,
    measure_backend_errors,
    save_backend_envelope,
)
from repro.verify.checks import (
    CheckResult,
    check_area_monotone_in_devices,
    check_backend_equivalence,
    check_batch_jobs,
    check_caches_identity,
    check_disk_roundtrip,
    check_frontend_accuracy,
    check_incremental_equivalence,
    check_serve_equivalence,
    check_plan_vs_direct,
    check_row_sweep_sanity,
    check_shared_within_upper_bound,
    check_sharing_factor_monotone,
    check_spread_mode_agreement,
    check_trace_identity,
    run_module_checks,
)
from repro.verify.congestion_envelope import (
    CONGESTION_ENVELOPE_SCHEMA_VERSION,
    CongestionEnvelopeBounds,
    CongestionEnvelopePoint,
    load_congestion_envelope,
    measure_congestion_case,
    measure_congestion_envelope,
    save_congestion_envelope,
    shape_distance,
    summarize_congestion,
)
from repro.verify.corpus import CaseSpec, draw_corpus, family_names
from repro.verify.envelope import (
    EnvelopeBounds,
    EnvelopePoint,
    measure_case,
    summarize,
    verification_schedule,
)
from repro.verify.inject import perturbed_backend, perturbed_standard_cell
from repro.verify.records import (
    RECORD_SCHEMA_VERSION,
    SeedRecord,
    load_records,
    save_records,
)
from repro.verify.runner import (
    REPORT_SCHEMA_VERSION,
    VerifyOptions,
    VerifyReport,
    replay_records,
    run_verify,
)
from repro.verify.shrink import ShrinkResult, shrink_module, without_devices

__all__ = [
    "BACKEND_ENVELOPE_SCHEMA_VERSION",
    "BackendEnvelopeBounds",
    "BackendEnvelopePoint",
    "CONGESTION_ENVELOPE_SCHEMA_VERSION",
    "CaseSpec",
    "CongestionEnvelopeBounds",
    "CongestionEnvelopePoint",
    "CheckResult",
    "EnvelopeBounds",
    "EnvelopePoint",
    "RECORD_SCHEMA_VERSION",
    "REPORT_SCHEMA_VERSION",
    "SeedRecord",
    "ShrinkResult",
    "VerifyOptions",
    "VerifyReport",
    "check_area_monotone_in_devices",
    "check_backend_equivalence",
    "check_batch_jobs",
    "check_caches_identity",
    "check_disk_roundtrip",
    "check_frontend_accuracy",
    "check_incremental_equivalence",
    "check_serve_equivalence",
    "check_plan_vs_direct",
    "check_row_sweep_sanity",
    "check_shared_within_upper_bound",
    "check_sharing_factor_monotone",
    "check_spread_mode_agreement",
    "check_trace_identity",
    "draw_corpus",
    "family_names",
    "load_backend_envelope",
    "load_congestion_envelope",
    "load_records",
    "measure_backend_envelope",
    "measure_backend_errors",
    "measure_case",
    "measure_congestion_case",
    "measure_congestion_envelope",
    "perturbed_backend",
    "perturbed_standard_cell",
    "save_backend_envelope",
    "save_congestion_envelope",
    "replay_records",
    "run_module_checks",
    "run_verify",
    "save_records",
    "shape_distance",
    "shrink_module",
    "summarize",
    "summarize_congestion",
    "verification_schedule",
    "without_devices",
]
