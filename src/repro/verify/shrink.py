"""Greedy failure shrinking: a delta-debugger for modules.

When a corpus case violates an invariant, the raw counterexample is a
30-gate random module — true but useless for debugging.  This module
minimises it: greedily remove devices while the failure still
reproduces, exactly the ddmin idea specialised to netlists (device
removal subsumes net removal — a net with fewer than two remaining
devices drops out of every routing statistic automatically).

The predicate contract is *"True means the failure reproduces"*.  A
candidate that raises :class:`~repro.errors.ReproError` (an
over-shrunk module may become unestimable) counts as *not*
reproducing, so shrinking never walks off the cliff into modules that
fail for a different reason.  The result always keeps at least one
device and carries the removal order, which is itself diagnostic —
devices whose removal kills the failure are the ones involved in it.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Tuple

from repro.errors import ReproError
from repro.netlist.model import Device, Module, Port


@dataclasses.dataclass(frozen=True)
class ShrinkResult:
    """Outcome of :func:`shrink_module`."""

    module: Module               # minimal module still failing
    removed: Tuple[str, ...]     # device names removed, in order
    evaluations: int             # predicate calls spent

    @property
    def device_count(self) -> int:
        return self.module.device_count


def without_devices(module: Module, names) -> Module:
    """A copy of ``module`` minus ``names`` (ports are kept: the
    estimators tolerate undriven ports, and keeping them preserves the
    port-length term of the Section 5 row choice)."""
    drop = set(names)
    result = Module(module.name)
    for port in module.ports:
        result.add_port(Port(port.name, port.direction, port.net,
                             port.width_lambda))
    for device in module.devices:
        if device.name in drop:
            continue
        result.add_device(Device(
            device.name, device.cell, dict(device.pins),
            device.width_lambda, device.height_lambda,
        ))
    return result


def shrink_module(
    module: Module,
    predicate: Callable[[Module], bool],
    max_evaluations: int = 200,
) -> ShrinkResult:
    """Greedily minimise ``module`` while ``predicate`` stays True.

    One pass tries removing each device in turn from the current
    survivor; any removal that still reproduces is kept immediately
    (greedy, not batched).  Passes repeat until a full pass removes
    nothing, the survivor is a single device, or the evaluation budget
    runs out.  ``module`` itself must satisfy ``predicate``.
    """
    evaluations = 0

    def reproduces(candidate: Module) -> bool:
        nonlocal evaluations
        evaluations += 1
        try:
            return bool(predicate(candidate))
        except ReproError:
            return False

    if not reproduces(module):
        raise ValueError(
            f"module {module.name!r} does not reproduce the failure; "
            "nothing to shrink"
        )

    current = module
    removed: List[str] = []
    progress = True
    while progress and current.device_count > 1:
        progress = False
        for device in list(current.devices):
            if evaluations >= max_evaluations:
                return ShrinkResult(current, tuple(removed), evaluations)
            if current.device_count <= 1:
                break
            candidate = without_devices(current, [device.name])
            if reproduces(candidate):
                current = candidate
                removed.append(device.name)
                progress = True
    return ShrinkResult(current, tuple(removed), evaluations)
