"""The differential verification runner.

Orchestrates one ``mae verify`` sweep end to end, with a tracer span
per stage (``verify.corpus`` → ``verify.equivalence`` →
``verify.metamorphic`` → ``verify.envelope`` → ``verify.shrink``):

1. **Corpus** — draw seeded :class:`~repro.verify.corpus.CaseSpec`
   recipes and build their modules (standard-cell cases estimate
   against the CMOS process, full-custom against nMOS, matching the
   paper's Table 2 / Table 1 technologies).
2. **Equivalence** — every bit-identity claim from the perf PRs, per
   module plus the corpus-wide batch ``jobs=1`` vs ``jobs=N`` and
   disk-cache round-trip checks.
3. **Metamorphic** — cross-input properties, including area
   monotonicity over grown random modules (prefix-aligned seeds keep
   the smaller module a strict sub-construction of the larger).
4. **Envelope** — estimator vs layout oracle, per-case relative error
   inside :class:`~repro.verify.envelope.EnvelopeBounds`.
5. **Shrink** — every failure is greedily minimised while it still
   reproduces and persisted as a replayable seed record.

The output is a :class:`VerifyReport` whose JSON form is the
``VERIFY_envelope.json`` artifact: per-stage drift gates, the
aggregate error distribution (Table 1/2 style), and the failure
records.  ``replay_records`` re-runs persisted failures.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import EstimatorConfig
from repro.errors import ReproError, VerificationError
from repro.layout.annealing import AnnealingSchedule
from repro.netlist.model import Module
from repro.obs.trace import current_tracer
from repro.technology.libraries import cmos_process, nmos_process
from repro.technology.process import ProcessDatabase
from repro.verify.checks import (
    CheckResult,
    check_area_monotone_in_devices,
    check_batch_jobs,
    check_caches_identity,
    check_disk_roundtrip,
    check_backend_equivalence,
    check_frontend_accuracy,
    check_incremental_equivalence,
    check_portfolio_determinism,
    check_serve_equivalence,
    check_plan_vs_direct,
    check_row_sweep_sanity,
    check_shared_within_upper_bound,
    check_sharing_factor_monotone,
    check_spread_mode_agreement,
    check_trace_identity,
    run_module_checks,
)
from repro.verify.congestion_envelope import (
    CongestionEnvelopeBounds,
    CongestionEnvelopePoint,
    measure_congestion_case,
    summarize_congestion,
)
from repro.verify.corpus import CaseSpec, draw_corpus
from repro.verify.envelope import (
    EnvelopeBounds,
    EnvelopePoint,
    measure_case,
    summarize,
    verification_schedule,
)
from repro.verify.records import SeedRecord, save_records
from repro.verify.shrink import shrink_module

#: Version of the VERIFY_envelope.json report shape.
REPORT_SCHEMA_VERSION = 1

#: Device-count increment for the grown twin in monotonicity checks.
GROWTH_STEP = 6


@dataclasses.dataclass(frozen=True)
class VerifyOptions:
    """Knobs for one verification sweep."""

    seeds: int = 25
    base_seed: int = 0
    jobs: int = 2
    bounds: EnvelopeBounds = dataclasses.field(
        default_factory=EnvelopeBounds
    )
    congestion_bounds: CongestionEnvelopeBounds = dataclasses.field(
        default_factory=CongestionEnvelopeBounds
    )
    schedule: Optional[AnnealingSchedule] = None
    check_envelope: bool = True
    shrink_budget: int = 120
    envelope_shrink_budget: int = 30
    #: When set, only these per-module check names run (the envelope
    #: still follows ``check_envelope``).  Lets CI gate one invariant —
    #: e.g. ``("incremental_equivalence",)`` — without paying for the
    #: whole sweep.
    checks: Optional[Tuple[str, ...]] = None

    def wants(self, name: str) -> bool:
        return self.checks is None or name in self.checks

    def wants_congestion(self) -> bool:
        """Whether the router-backed congestion stage runs.

        Explicit ``--check congestion_oracle`` always runs it (even
        under ``--skip-envelope`` — the CI smoke gate); otherwise it
        rides with the envelope stage, so plain ``--skip-envelope``
        skips every layout oracle as before.
        """
        if self.checks is not None:
            return "congestion_oracle" in self.checks
        return self.check_envelope

    def wants_frontend(self) -> bool:
        """Whether the frontend calibration gate runs.

        Explicit ``--check frontend_accuracy`` always runs it (the CI
        smoke gate works under ``--skip-envelope``); otherwise it
        rides with the envelope stage, since it compares against a
        committed accuracy artifact just like the layout oracles.
        """
        if self.checks is not None:
            return "frontend_accuracy" in self.checks
        return self.check_envelope


@dataclasses.dataclass
class VerifyReport:
    """Everything one sweep learned, serializable as the drift artifact."""

    seeds: int
    base_seed: int
    cases: List[dict]
    check_counts: Dict[str, Dict[str, int]]
    envelope_points: List[EnvelopePoint]
    envelope_summary: Dict[str, dict]
    congestion_points: List[CongestionEnvelopePoint]
    congestion_summary: Dict[str, object]
    failures: List[SeedRecord]
    gates: Dict[str, bool]

    @property
    def passed(self) -> bool:
        return all(self.gates.values())

    def to_dict(self) -> dict:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "seeds": self.seeds,
            "base_seed": self.base_seed,
            "passed": self.passed,
            "gates": dict(self.gates),
            "cases": list(self.cases),
            "checks": {
                name: dict(counts)
                for name, counts in sorted(self.check_counts.items())
            },
            "envelope": {
                "summary": self.envelope_summary,
                "points": [
                    point.to_dict() for point in self.envelope_points
                ],
            },
            "congestion": {
                "summary": self.congestion_summary,
                "points": [
                    point.to_dict() for point in self.congestion_points
                ],
            },
            "failures": [record.to_dict() for record in self.failures],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path


#: Stage owning each check name (drives the report's drift gates).
CHECK_STAGES: Dict[str, str] = {
    "plan_vs_direct": "equivalence",
    "caches_identity": "equivalence",
    "trace_identity": "equivalence",
    "incremental_equivalence": "equivalence",
    "backend_equivalence": "equivalence",
    "serve_equivalence": "equivalence",
    "batch_jobs": "equivalence",
    "disk_roundtrip": "equivalence",
    "portfolio_determinism": "equivalence",
    "shared_within_upper_bound": "metamorphic",
    "sharing_factor_monotone": "metamorphic",
    "spread_mode_agreement": "metamorphic",
    "row_sweep_sanity": "metamorphic",
    "area_monotone_in_devices": "metamorphic",
    "envelope": "envelope",
    "congestion_oracle": "envelope",
    "frontend_accuracy": "envelope",
}


def _processes() -> Dict[str, ProcessDatabase]:
    return {
        "standard-cell": cmos_process(),
        "full-custom": nmos_process(),
    }


def _grown_spec(spec: CaseSpec) -> Optional[CaseSpec]:
    """The same random recipe with more gates (prefix-aligned: each
    planning iteration consumes a fixed number of rng draws, so the
    smaller module is a sub-construction of the larger)."""
    if spec.family not in ("random", "random_nmos"):
        return None
    params = dict(spec.params)
    params["gates"] = int(params["gates"]) + GROWTH_STEP
    return CaseSpec.make(spec.family, spec.seed, params)


def _single_check(
    name: str,
    module: Module,
    process: ProcessDatabase,
    methodology: str,
) -> CheckResult:
    """Re-run one named per-module check (the shrink predicate core)."""
    if name == "plan_vs_direct":
        return check_plan_vs_direct(module, process)
    if name == "caches_identity":
        return check_caches_identity(module, process, methodology)
    if name == "trace_identity":
        return check_trace_identity(module, process, methodology)
    if name == "batch_jobs":
        return check_batch_jobs([module], process, jobs=2)
    if name == "disk_roundtrip":
        return check_disk_roundtrip(module, process)
    if name == "incremental_equivalence":
        return check_incremental_equivalence(module, process)
    if name == "backend_equivalence":
        return check_backend_equivalence(module, process)
    if name == "serve_equivalence":
        return check_serve_equivalence(module, process)
    if name == "shared_within_upper_bound":
        return check_shared_within_upper_bound(module, process)
    if name == "sharing_factor_monotone":
        return check_sharing_factor_monotone(module, process)
    if name == "spread_mode_agreement":
        return check_spread_mode_agreement(module, process)
    if name == "row_sweep_sanity":
        return check_row_sweep_sanity(module, process)
    raise VerificationError(f"no single-module form for check {name!r}")


def run_verify(options: Optional[VerifyOptions] = None) -> VerifyReport:
    """One full verification sweep; never raises on a failed invariant
    (the report's gates carry the verdict)."""
    options = options or VerifyOptions()
    tracer = current_tracer()
    processes = _processes()
    check_counts: Dict[str, Dict[str, int]] = {}
    #: (spec, module, check name, detail, shrink predicate or None)
    pending_failures: List[tuple] = []

    def note(spec: CaseSpec, module: Optional[Module],
             result: CheckResult,
             predicate: Optional[Callable[[Module], bool]]) -> None:
        counts = check_counts.setdefault(
            result.name, {"passed": 0, "failed": 0}
        )
        counts["passed" if result.passed else "failed"] += 1
        if not result.passed:
            pending_failures.append(
                (spec, module, result.name, result.detail, predicate)
            )

    # ------------------------------------------------------------------
    with tracer.span("verify.corpus") as span:
        specs = draw_corpus(options.seeds, options.base_seed)
        built: List[Tuple[CaseSpec, Module]] = [
            (spec, spec.build()) for spec in specs
        ]
        if tracer.enabled:
            span.set("cases", len(built))

    # ------------------------------------------------------------------
    with tracer.span("verify.equivalence") as span:
        for spec, module in built:
            process = processes[spec.methodology]
            for result in run_module_checks(
                module, process, spec.methodology
            ):
                if CHECK_STAGES[result.name] != "equivalence":
                    continue
                if not options.wants(result.name):
                    continue
                note(spec, module, result,
                     _predicate(result.name, process, spec.methodology))
        # Corpus-wide: one pooled batch over every standard-cell module
        # (force_pool exercises real workers even on one-core hosts),
        # and one disk round-trip per sweep.
        sc_cases = [
            (spec, module) for spec, module in built
            if spec.methodology == "standard-cell"
        ]
        if sc_cases and options.wants("batch_jobs"):
            process = processes["standard-cell"]
            batch = check_batch_jobs(
                [module for _, module in sc_cases], process,
                jobs=max(2, options.jobs),
            )
            if batch.passed:
                note(sc_cases[0][0], sc_cases[0][1], batch, None)
            else:
                # Localise: re-check each module alone so the failure
                # shrinks against the module that actually diverges.
                for spec, module in sc_cases:
                    single = check_batch_jobs([module], process, jobs=2)
                    if not single.passed:
                        note(spec, module, single,
                             _predicate("batch_jobs", process,
                                        spec.methodology))
        if sc_cases and options.wants("disk_roundtrip"):
            process = processes["standard-cell"]
            note(sc_cases[0][0], sc_cases[0][1],
                 check_disk_roundtrip(sc_cases[0][1], process),
                 _predicate("disk_roundtrip", process, "standard-cell"))
        # Design-level: every hierarchical case races the portfolio
        # optimizer and must replay bit-identically (same seed, resume
        # from checkpoint, and the serial reference engine).  The check
        # relates a whole design, not one module, so record unshrunk.
        if options.wants("portfolio_determinism"):
            process = processes["standard-cell"]
            for spec, module in built:
                if spec.family != "hier":
                    continue
                note(spec, module,
                     check_portfolio_determinism(spec, process), None)
        if tracer.enabled:
            span.set("checks", sum(
                counts["passed"] + counts["failed"]
                for counts in check_counts.values()
            ))

    # ------------------------------------------------------------------
    with tracer.span("verify.metamorphic") as span:
        pairs = 0
        for spec, module in built:
            process = processes[spec.methodology]
            for result in run_module_checks(
                module, process, spec.methodology
            ):
                if CHECK_STAGES[result.name] != "metamorphic":
                    continue
                if not options.wants(result.name):
                    continue
                note(spec, module, result,
                     _predicate(result.name, process, spec.methodology))
            grown = _grown_spec(spec)
            if not options.wants("area_monotone_in_devices"):
                grown = None
            if grown is not None:
                pairs += 1
                result = check_area_monotone_in_devices(
                    module, grown.build(), process, spec.methodology
                )
                # Monotonicity relates two modules; shrinking one of
                # them breaks the relation, so record unshrunk.
                note(spec, module, result, None)
        if tracer.enabled:
            span.set("growth_pairs", pairs)

    # ------------------------------------------------------------------
    envelope_points: List[EnvelopePoint] = []
    if options.check_envelope:
        with tracer.span("verify.envelope") as span:
            schedule = options.schedule or verification_schedule()
            for spec, module in built:
                process = processes[spec.methodology]
                point = measure_case(
                    spec, module, process, options.bounds, schedule
                )
                envelope_points.append(point)
                result = CheckResult(
                    "envelope", point.within,
                    "" if point.within else (
                        f"relative error {point.error:+.3f} outside "
                        f"{options.bounds.range_for(spec.methodology)}"
                    ),
                )
                note(spec, module, result,
                     _envelope_predicate(spec, process, options.bounds,
                                         schedule))
            if tracer.enabled:
                span.set("points", len(envelope_points))

    # ------------------------------------------------------------------
    congestion_points: List[CongestionEnvelopePoint] = []
    if options.wants_congestion():
        with tracer.span("verify.congestion") as span:
            schedule = options.schedule or verification_schedule()
            process = processes["standard-cell"]
            for spec, module in built:
                if spec.methodology != "standard-cell":
                    continue
                point = measure_congestion_case(
                    spec, module, process, options.congestion_bounds,
                    schedule,
                )
                congestion_points.append(point)
                result = CheckResult(
                    "congestion_oracle", point.within,
                    "" if point.within else (
                        f"total error {point.total_error:+.3f} / shape "
                        f"error {point.shape_error:.3f} outside bounds "
                        f"{options.congestion_bounds.to_dict()}"
                    ),
                )
                note(spec, module, result,
                     _congestion_predicate(spec, process,
                                           options.congestion_bounds,
                                           schedule))
            if tracer.enabled:
                span.set("points", len(congestion_points))

    # ------------------------------------------------------------------
    if options.wants_frontend():
        with tracer.span("verify.frontend") as span:
            # Corpus-independent: the gate refits the committed golden
            # fixtures against the committed envelope artifact once per
            # sweep.  The record's spec points at the blif corpus
            # family so a failure still replays through seed records.
            result = check_frontend_accuracy()
            anchor = next(
                (spec for spec, _ in built if spec.family == "blif"),
                CaseSpec.make("blif", 0, {"fixture": 0}),
            )
            note(anchor, None, result, None)
            if tracer.enabled:
                span.set("passed", result.passed)

    # ------------------------------------------------------------------
    failures: List[SeedRecord] = []
    with tracer.span("verify.shrink") as span:
        for spec, module, name, detail, predicate in pending_failures:
            shrunk_devices = None
            shrunk_count = None
            if predicate is not None and module is not None:
                budget = (
                    options.envelope_shrink_budget
                    if name in ("envelope", "congestion_oracle")
                    else options.shrink_budget
                )
                try:
                    shrunk = shrink_module(module, predicate, budget)
                    shrunk_devices = tuple(
                        device.name for device in shrunk.module.devices
                    )
                    shrunk_count = shrunk.module.device_count
                except (ValueError, ReproError):
                    pass  # keep the unshrunk record
            failures.append(SeedRecord(
                spec=spec,
                check=name,
                stage=CHECK_STAGES[name],
                detail=detail,
                shrunk_devices=shrunk_devices,
                shrunk_device_count=shrunk_count,
            ))
        if tracer.enabled:
            span.set("failures", len(failures))

    gates = {
        stage: all(
            check_counts.get(name, {}).get("failed", 0) == 0
            for name, owner in CHECK_STAGES.items()
            if owner == stage
        )
        for stage in ("equivalence", "metamorphic", "envelope")
    }
    return VerifyReport(
        seeds=options.seeds,
        base_seed=options.base_seed,
        cases=[
            {
                "label": spec.label,
                "family": spec.family,
                "methodology": spec.methodology,
                "devices": module.device_count,
            }
            for spec, module in built
        ],
        check_counts=check_counts,
        envelope_points=envelope_points,
        envelope_summary=summarize(envelope_points, options.bounds),
        congestion_points=congestion_points,
        congestion_summary=summarize_congestion(
            congestion_points, options.congestion_bounds
        ),
        failures=failures,
        gates=gates,
    )


def _predicate(
    name: str,
    process: ProcessDatabase,
    methodology: str,
) -> Callable[[Module], bool]:
    """Shrink predicate: True while the named check still fails."""

    def failing(candidate: Module) -> bool:
        return not _single_check(name, candidate, process, methodology)

    return failing


def _envelope_predicate(
    spec: CaseSpec,
    process: ProcessDatabase,
    bounds: EnvelopeBounds,
    schedule: AnnealingSchedule,
) -> Callable[[Module], bool]:
    def failing(candidate: Module) -> bool:
        point = measure_case(spec, candidate, process, bounds, schedule)
        return not point.within

    return failing


def _congestion_predicate(
    spec: CaseSpec,
    process: ProcessDatabase,
    bounds: CongestionEnvelopeBounds,
    schedule: AnnealingSchedule,
) -> Callable[[Module], bool]:
    def failing(candidate: Module) -> bool:
        point = measure_congestion_case(
            spec, candidate, process, bounds, schedule
        )
        return not point.within

    return failing


def replay_records(
    records: Sequence[SeedRecord],
    bounds: Optional[EnvelopeBounds] = None,
    schedule: Optional[AnnealingSchedule] = None,
) -> List[Tuple[SeedRecord, CheckResult]]:
    """Rebuild each record's module and re-run its violated check.

    Returns (record, result) pairs; a result that *fails* means the
    failure still reproduces — which is what a replay is for.
    """
    bounds = bounds or EnvelopeBounds()
    schedule = schedule or verification_schedule()
    processes = _processes()
    outcomes: List[Tuple[SeedRecord, CheckResult]] = []
    for record in records:
        module = record.spec.build()
        process = processes[record.spec.methodology]
        if record.check == "envelope":
            point = measure_case(
                record.spec, module, process, bounds, schedule
            )
            result = CheckResult(
                "envelope", point.within,
                f"relative error {point.error:+.3f}",
            )
        elif record.check == "congestion_oracle":
            congestion = measure_congestion_case(
                record.spec, module, process, CongestionEnvelopeBounds(),
                schedule,
            )
            result = CheckResult(
                "congestion_oracle", congestion.within,
                f"total error {congestion.total_error:+.3f} / shape "
                f"error {congestion.shape_error:.3f}",
            )
        elif record.check == "portfolio_determinism":
            result = check_portfolio_determinism(record.spec, process)
        elif record.check == "frontend_accuracy":
            result = check_frontend_accuracy()
        elif record.check == "area_monotone_in_devices":
            grown = _grown_spec(record.spec)
            if grown is None:
                raise VerificationError(
                    f"record {record.spec.label}: no growth twin for "
                    "monotonicity replay"
                )
            result = check_area_monotone_in_devices(
                module, grown.build(), process, record.spec.methodology
            )
        else:
            result = _single_check(
                record.check, module, process, record.spec.methodology
            )
        outcomes.append((record, result))
    return outcomes
