"""Deliberate estimator perturbation, for testing the tester.

A verification harness that has never caught anything proves nothing.
:func:`perturbed_standard_cell` injects a controlled fault — scaling
the *direct* standard-cell path's result while leaving the compiled
plans untouched — so a verify run under injection must fail its
``plan_vs_direct`` invariant (and, for large factors, the accuracy
envelope), shrink the counterexample, and emit a replayable seed
record.  The self-test lives in ``tests/test_verify_runner.py`` and
can be reproduced from the CLI with ``mae verify --inject 1.2``.

The patch point is the module-global
``repro.core.standard_cell.estimate_standard_cell_from_stats`` lookup,
which both the facade and the stats-reusing callers resolve at call
time; restoring it is exception-safe.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager
from typing import Iterator

from repro.errors import VerificationError


@contextmanager
def perturbed_standard_cell(scale: float = 1.2) -> Iterator[None]:
    """Scale the direct standard-cell estimator's area by ``scale``
    (tracks too, so the fault looks like a real model regression) for
    the duration of the block."""
    if scale <= 0:
        raise VerificationError(f"scale must be positive, got {scale}")
    import repro.core.standard_cell as standard_cell

    original = standard_cell.estimate_standard_cell_from_stats

    def perturbed(stats, process, config=None):
        estimate = original(stats, process, config)
        return dataclasses.replace(
            estimate,
            tracks=max(estimate.tracks, round(estimate.tracks * scale)),
            area=estimate.area * scale,
            wiring_area=estimate.wiring_area * scale,
        )

    standard_cell.estimate_standard_cell_from_stats = perturbed
    try:
        yield
    finally:
        standard_cell.estimate_standard_cell_from_stats = original
