"""Deliberate estimator perturbation, for testing the tester.

A verification harness that has never caught anything proves nothing.
:func:`perturbed_standard_cell` injects a controlled fault — scaling
the *direct* standard-cell path's result while leaving the compiled
plans untouched — so a verify run under injection must fail its
``plan_vs_direct`` invariant (and, for large factors, the accuracy
envelope), shrink the counterexample, and emit a replayable seed
record.  The self-test lives in ``tests/test_verify_runner.py`` and
can be reproduced from the CLI with ``mae verify --inject 1.2``.

The patch point is the module-global
``repro.core.standard_cell.estimate_standard_cell_from_stats`` lookup,
which both the facade and the stats-reusing callers resolve at call
time; restoring it is exception-safe.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager
from typing import Iterator

from repro.errors import VerificationError


@contextmanager
def perturbed_standard_cell(scale: float = 1.2) -> Iterator[None]:
    """Scale the direct standard-cell estimator's area by ``scale``
    (tracks too, so the fault looks like a real model regression) for
    the duration of the block."""
    if scale <= 0:
        raise VerificationError(f"scale must be positive, got {scale}")
    import repro.core.standard_cell as standard_cell

    original = standard_cell.estimate_standard_cell_from_stats

    def perturbed(stats, process, config=None):
        estimate = original(stats, process, config)
        return dataclasses.replace(
            estimate,
            tracks=max(estimate.tracks, round(estimate.tracks * scale)),
            area=estimate.area * scale,
            wiring_area=estimate.wiring_area * scale,
        )

    standard_cell.estimate_standard_cell_from_stats = perturbed
    try:
        yield
    finally:
        standard_cell.estimate_standard_cell_from_stats = original


@contextmanager
def perturbed_backend(
    scale: float = 1.2, name: str = "numpy"
) -> Iterator[None]:
    """Scale the named backend's track kernel outputs for the duration
    of the block, so ``backend_equivalence`` must trip.

    The patch point is the registered backend *instance* (the same
    object every plan resolves per evaluation), emulating a numerical
    fault in the vectorized kernels while the exact reference stays
    honest.  A no-op when the backend's dependency is missing — there
    is nothing to perturb and the gate is trivially satisfied anyway.
    """
    if scale <= 0:
        raise VerificationError(f"scale must be positive, got {scale}")
    from repro.perf.backends import get_backend
    from repro.errors import BackendUnavailableError

    try:
        backend = get_backend(name)
    except BackendUnavailableError:
        yield
        return
    if scale == 1.0:
        # Identity perturbation: nothing to inject (the +1 floor below
        # exists to make *real* scales trip even on one-track nets).
        yield
        return

    original_single = backend.tracks_for_histogram
    original_rows = backend.tracks_for_histogram_rows

    def bump(per_size):
        return tuple(
            tracks if tracks == 0 else max(tracks + 1,
                                           round(tracks * scale))
            for tracks in per_size
        )

    def perturbed_single(histogram, rows, mode):
        return bump(original_single(histogram, rows, mode))

    def perturbed_rows(histogram, row_counts, mode):
        return tuple(
            bump(per_size)
            for per_size in original_rows(histogram, row_counts, mode)
        )

    backend.tracks_for_histogram = perturbed_single
    backend.tracks_for_histogram_rows = perturbed_rows
    try:
        yield
    finally:
        backend.tracks_for_histogram = original_single
        backend.tracks_for_histogram_rows = original_rows
