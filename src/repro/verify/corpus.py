"""Seeded corpus driver for the differential verification harness.

A :class:`CaseSpec` is a *recipe* for a module — family name, seed, and
a flat parameter mapping — rather than the module itself.  Recipes are
JSON-serializable, so a failing case can be persisted as a replayable
seed record (:mod:`repro.verify.records`) and rebuilt bit-identically
in a later process: every generator in
:mod:`repro.workloads.generators` is deterministic given its seed.

:func:`draw_corpus` sweeps the corpus the way the paper's tables sweep
designs: structured families (adders, counters, decoders, muxes,
LFSRs, ALU slices, register files) plus :func:`random_gate_module` at
several sizes/localities/cell mixes for standard-cell cases, and
transistor-level families (expanded random logic, expanded decoders,
pass-transistor chains) for full-custom cases.  The draw is
round-robin over families so even a small ``--seeds`` budget touches
every family, and fully deterministic in ``base_seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Tuple, Union

from repro.errors import VerificationError
from repro.netlist.model import Module
from repro.workloads.generators import (
    adder_module,
    alu_slice_module,
    counter_module,
    decoder_module,
    expand_to_transistors,
    lfsr_module,
    mux_tree_module,
    pass_transistor_chain,
    random_gate_module,
    register_file_module,
)

ParamValue = Union[int, float]

#: Cell mix restricted to gates with an nMOS transistor expansion, so
#: ``random_nmos`` cases can run the full-custom oracle.
EXPANDABLE_CELL_MIX = (
    ("NAND2", 4.0),
    ("NOR2", 3.0),
    ("INV", 3.0),
    ("NAND3", 1.5),
    ("AOI21", 1.0),
)


@dataclass(frozen=True)
class CaseSpec:
    """A replayable corpus case: (family, seed, params).

    ``params`` is stored as a sorted tuple of (name, value) pairs so
    specs are hashable and compare by content.
    """

    family: str
    seed: int
    params: Tuple[Tuple[str, ParamValue], ...] = ()

    @staticmethod
    def make(family: str, seed: int,
             params: Mapping[str, ParamValue]) -> "CaseSpec":
        return CaseSpec(family, seed, tuple(sorted(params.items())))

    @property
    def methodology(self) -> str:
        """``"standard-cell"`` or ``"full-custom"``, fixed per family."""
        return _family(self.family).methodology

    @property
    def label(self) -> str:
        """A short unique module name, e.g. ``random_s17_g12``."""
        bits = "".join(
            f"_{name[0]}{value}" for name, value in self.params
        ).replace(".", "p")
        return f"{self.family}_s{self.seed}{bits}"

    def param(self, name: str) -> ParamValue:
        for key, value in self.params:
            if key == name:
                return value
        raise VerificationError(
            f"case {self.label}: missing parameter {name!r}"
        )

    def build(self) -> Module:
        """Rebuild the module (deterministic: same spec, same module)."""
        return _family(self.family).build(self)

    def to_dict(self) -> dict:
        return {
            "family": self.family,
            "seed": self.seed,
            "params": {name: value for name, value in self.params},
        }

    @staticmethod
    def from_dict(data: Mapping) -> "CaseSpec":
        try:
            family = data["family"]
            seed = data["seed"]
            params = data.get("params", {})
        except (KeyError, TypeError) as exc:
            raise VerificationError(f"malformed case spec: {data!r}") from exc
        if family not in _FAMILIES:
            raise VerificationError(f"unknown corpus family {family!r}")
        if not isinstance(seed, int) or not isinstance(params, dict):
            raise VerificationError(f"malformed case spec: {data!r}")
        return CaseSpec.make(family, seed, params)


@dataclass(frozen=True)
class _Family:
    """One corpus family: its methodology, builder, and param sampler."""

    name: str
    methodology: str
    builder: Callable[[CaseSpec], Module]
    sampler: Callable[[random.Random], Dict[str, ParamValue]] = field(
        default=lambda rng: {}
    )

    def build(self, spec: CaseSpec) -> Module:
        return self.builder(spec)

    def draw(self, rng: random.Random) -> CaseSpec:
        return CaseSpec.make(self.name, rng.randrange(1_000_000),
                             self.sampler(rng))


def _build_random(spec: CaseSpec) -> Module:
    return random_gate_module(
        spec.label,
        gates=int(spec.param("gates")),
        inputs=int(spec.param("inputs")),
        outputs=int(spec.param("outputs")),
        seed=spec.seed,
        locality=float(spec.param("locality")),
    )


def _build_random_nmos(spec: CaseSpec) -> Module:
    gate_level = random_gate_module(
        spec.label + "_g",
        gates=int(spec.param("gates")),
        inputs=int(spec.param("inputs")),
        outputs=int(spec.param("outputs")),
        seed=spec.seed,
        cell_mix=EXPANDABLE_CELL_MIX,
        locality=float(spec.param("locality")),
    )
    return expand_to_transistors(gate_level, name=spec.label)


def _build_decoder_nmos(spec: CaseSpec) -> Module:
    gate_level = decoder_module(
        spec.label + "_g", int(spec.param("address_bits"))
    )
    return expand_to_transistors(gate_level, name=spec.label)


def _build_blif(spec: CaseSpec) -> Module:
    """A frontend-ingested case: one committed golden BLIF fixture
    parsed through :mod:`repro.frontend.blif`, renamed to the spec
    label so every case is a distinct module.  Fixture files are
    committed, so the recipe replays bit-identically like any
    generated family — and every equivalence gate (plan-vs-direct,
    backends, incremental, serve, congestion) now runs over ingested
    netlists too."""
    from repro.frontend.blif import parse_blif
    from repro.frontend.calibrate import fixture_blifs

    paths = fixture_blifs()
    path = paths[int(spec.param("fixture")) % len(paths)]
    module = parse_blif(path.read_text(), str(path))
    module.name = spec.label
    return module


def _sample_blif(rng: random.Random) -> Dict[str, ParamValue]:
    from repro.frontend.calibrate import fixture_blifs

    return {"fixture": rng.randrange(len(fixture_blifs()))}


def _build_hier(spec: CaseSpec) -> Module:
    """The portfolio workload: a seeded hierarchical multi-module chip,
    flattened through the instantiation hierarchy into one gate-level
    module.  The single-module invariant checks run on the flattened
    chip; the ``portfolio_determinism`` gate rebuilds the *design* from
    the same spec and races the optimizer over it."""
    from repro.workloads.designs import generate_design

    design = generate_design(
        int(spec.param("modules")), seed=spec.seed, name=spec.label
    )
    return design.flatten()


_FAMILIES: Dict[str, _Family] = {}


def _register(family: _Family) -> None:
    _FAMILIES[family.name] = family


def _family(name: str) -> _Family:
    family = _FAMILIES.get(name)
    if family is None:
        raise VerificationError(
            f"unknown corpus family {name!r} "
            f"(known: {sorted(_FAMILIES)})"
        )
    return family


# Standard-cell families ------------------------------------------------
_register(_Family(
    "random", "standard-cell", _build_random,
    lambda rng: {
        "gates": rng.randrange(6, 37),
        "inputs": rng.randrange(3, 7),
        "outputs": rng.randrange(1, 4),
        "locality": round(rng.uniform(0.1, 1.0), 2),
    },
))
_register(_Family(
    "adder", "standard-cell",
    lambda spec: adder_module(spec.label, int(spec.param("bits"))),
    lambda rng: {"bits": rng.randrange(2, 9)},
))
_register(_Family(
    "counter", "standard-cell",
    lambda spec: counter_module(spec.label, int(spec.param("bits"))),
    lambda rng: {"bits": rng.randrange(2, 7)},
))
_register(_Family(
    "decoder", "standard-cell",
    lambda spec: decoder_module(spec.label, int(spec.param("address_bits"))),
    lambda rng: {"address_bits": rng.randrange(2, 5)},
))
_register(_Family(
    "mux", "standard-cell",
    lambda spec: mux_tree_module(spec.label, int(spec.param("select_bits"))),
    lambda rng: {"select_bits": rng.randrange(2, 5)},
))
_register(_Family(
    "lfsr", "standard-cell",
    lambda spec: lfsr_module(spec.label, int(spec.param("bits"))),
    lambda rng: {"bits": rng.randrange(3, 9)},
))
_register(_Family(
    "alu", "standard-cell",
    lambda spec: alu_slice_module(spec.label, int(spec.param("bits"))),
    lambda rng: {"bits": rng.randrange(2, 5)},
))
_register(_Family(
    "regfile", "standard-cell",
    lambda spec: register_file_module(
        spec.label, int(spec.param("words")), int(spec.param("bits"))
    ),
    lambda rng: {"words": rng.randrange(2, 5), "bits": rng.randrange(2, 5)},
))
_register(_Family(
    "hier", "standard-cell", _build_hier,
    lambda rng: {"modules": rng.randrange(4, 8)},
))
_register(_Family(
    "blif", "standard-cell", _build_blif, _sample_blif,
))

# Full-custom families --------------------------------------------------
_register(_Family(
    "random_nmos", "full-custom", _build_random_nmos,
    lambda rng: {
        "gates": rng.randrange(4, 11),
        "inputs": rng.randrange(2, 5),
        "outputs": rng.randrange(1, 3),
        "locality": round(rng.uniform(0.3, 1.0), 2),
    },
))
_register(_Family(
    "decoder_nmos", "full-custom", _build_decoder_nmos,
    lambda rng: {"address_bits": rng.randrange(2, 4)},
))
_register(_Family(
    "pass_chain", "full-custom",
    lambda spec: pass_transistor_chain(spec.label, int(spec.param("stages"))),
    lambda rng: {"stages": rng.randrange(3, 11)},
))


def family_names() -> Tuple[str, ...]:
    """All registered corpus families, standard-cell first."""
    return tuple(sorted(
        _FAMILIES,
        key=lambda name: (_FAMILIES[name].methodology, name),
    ))


def draw_corpus(count: int, base_seed: int = 0) -> List[CaseSpec]:
    """Draw ``count`` replayable cases, deterministically in ``base_seed``.

    Families are visited round-robin so every family appears once per
    ``len(family_names())`` cases; parameters and per-case seeds come
    from one ``random.Random(base_seed)`` stream.
    """
    if count < 1:
        raise VerificationError(f"corpus count must be >= 1, got {count}")
    rng = random.Random(base_seed)
    names = family_names()
    return [
        _FAMILIES[names[index % len(names)]].draw(rng)
        for index in range(count)
    ]
