"""Replayable seed records for verification failures.

A failing corpus case is persisted as a *recipe*, not a netlist: the
:class:`~repro.verify.corpus.CaseSpec` (family + seed + params) rebuilds
the exact module in any process, so a record file checked into a bug
report — or uploaded as a CI artifact — replays with ``mae verify
--replay FILE``.  Alongside the spec each record carries the violated
check, its detail string, and the shrink outcome (which devices of the
rebuilt module the failure actually needs).

The file format is versioned JSON, validated loudly on load the same
way :mod:`repro.perf.diskcache` treats its files: any structural
problem raises :class:`~repro.errors.VerificationError` rather than
replaying half a file.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import VerificationError
from repro.verify.corpus import CaseSpec

#: Bump when the record shape changes.
RECORD_SCHEMA_VERSION = 1


@dataclasses.dataclass(frozen=True)
class SeedRecord:
    """One replayable verification failure."""

    spec: CaseSpec
    check: str                   # violated check name
    stage: str                   # verify stage that caught it
    detail: str = ""
    shrunk_devices: Optional[Tuple[str, ...]] = None
    shrunk_device_count: Optional[int] = None

    def to_dict(self) -> dict:
        data = {
            "spec": self.spec.to_dict(),
            "check": self.check,
            "stage": self.stage,
            "detail": self.detail,
        }
        if self.shrunk_devices is not None:
            data["shrunk_devices"] = list(self.shrunk_devices)
            data["shrunk_device_count"] = self.shrunk_device_count
        return data

    @staticmethod
    def from_dict(data: Mapping) -> "SeedRecord":
        if not isinstance(data, Mapping):
            raise VerificationError(f"malformed seed record: {data!r}")
        try:
            spec = CaseSpec.from_dict(data["spec"])
            check = data["check"]
            stage = data["stage"]
        except KeyError as exc:
            raise VerificationError(
                f"seed record missing field {exc.args[0]!r}"
            ) from exc
        if not isinstance(check, str) or not isinstance(stage, str):
            raise VerificationError(f"malformed seed record: {data!r}")
        shrunk = data.get("shrunk_devices")
        return SeedRecord(
            spec=spec,
            check=check,
            stage=stage,
            detail=str(data.get("detail", "")),
            shrunk_devices=tuple(shrunk) if shrunk is not None else None,
            shrunk_device_count=data.get("shrunk_device_count"),
        )


def save_records(path: Union[str, Path],
                 records: Sequence[SeedRecord]) -> Path:
    """Write records to ``path`` as versioned JSON."""
    path = Path(path)
    payload = {
        "schema_version": RECORD_SCHEMA_VERSION,
        "records": [record.to_dict() for record in records],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_records(path: Union[str, Path]) -> List[SeedRecord]:
    """Load and validate a record file; loud failure, never half a load."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise VerificationError(
            f"cannot read seed records {path}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise VerificationError(
            f"seed records {path} are not valid JSON: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise VerificationError(f"{path}: record file must be a JSON object")
    version = payload.get("schema_version")
    if version != RECORD_SCHEMA_VERSION:
        raise VerificationError(
            f"{path}: unsupported schema_version {version!r} "
            f"(expected {RECORD_SCHEMA_VERSION})"
        )
    records = payload.get("records")
    if not isinstance(records, list):
        raise VerificationError(f"{path}: 'records' must be a list")
    return [SeedRecord.from_dict(entry) for entry in records]
