"""Router-backed congestion accuracy envelope, committed.

The congestion model (:mod:`repro.congestion`) predicts *where* a
module's Eq. 2-3 track demand lands: an expected track count per
routing channel.  This module gates those predictions against the
in-repo routers — every corpus case is placed and channel-routed by
:func:`repro.layout.standard_cell_flow.layout_standard_cell` (the
global router assigns trunks to channels, the left-edge channel router
packs them into tracks), and the predicted per-channel demand is
compared against the routed per-channel track usage on two axes:

* **total error** — ``predicted_total / routed_total - 1``, the same
  relative-error convention as the area envelope.  The estimator's
  one-net-per-track model is an upper bound, so this sits mostly
  above zero.
* **shape error** — the total-variation distance between the
  *normalised* predicted and routed per-channel distributions, in
  [0, 1]: 0 means the model puts demand in exactly the channels the
  router fills, 1 means the distributions are disjoint.  This is the
  metric that catches a model that predicts the right total in the
  wrong channels.

``mae verify --check congestion_oracle`` runs this over the corpus;
the calibrated bounds are committed as
``VERIFY_congestion_envelope.json`` (``--congestion-report``), so
drift in either the model or the routers shows up as a reviewable
diff.  docs/ORACLES.md records the calibration run.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Sequence

from repro.core.config import EstimatorConfig
from repro.core.standard_cell import estimate_standard_cell
from repro.congestion.model import (
    congestion_distribution,
    resolve_channel_capacity,
)
from repro.errors import VerificationError
from repro.layout.annealing import AnnealingSchedule
from repro.layout.standard_cell_flow import layout_standard_cell
from repro.netlist.model import Module
from repro.netlist.stats import scan_module
from repro.technology.process import ProcessDatabase
from repro.verify.corpus import CaseSpec

#: Artifact schema, bumped on shape changes.
CONGESTION_ENVELOPE_SCHEMA_VERSION = 1


@dataclasses.dataclass(frozen=True)
class CongestionEnvelopeBounds:
    """Committed gates for predicted-vs-routed channel demand.

    Calibrated over the 0/1/2-base-seed corpus sweeps (54
    standard-cell cases, total error in [+0.00, +6.43], shape error
    <= 0.25) against the pinned verification schedule, then widened
    by a safety margin (docs/ORACLES.md records the observed ranges).
    The total-error band is wide and one-sided for a structural
    reason: the Eq. 2-3 demand model books one track per net segment,
    while the left-edge router packs a channel down to its density
    lower bound, so predictions sit well above routed usage — what the
    gate actually pins down is the *shape*: demand must land in the
    channels the router fills.
    """

    total_low: float = -0.50
    total_high: float = 8.00
    shape_max: float = 0.40

    def contains(self, total_error: float, shape_error: float) -> bool:
        return (
            self.total_low <= total_error <= self.total_high
            and shape_error <= self.shape_max
        )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class CongestionEnvelopePoint:
    """One case's predicted-vs-routed per-channel comparison."""

    label: str
    family: str
    devices: int
    rows: int
    capacity: int
    predicted_total: float       # sum of per-channel demand means
    routed_total: int            # sum of routed channel tracks
    total_error: float           # predicted/routed - 1
    shape_error: float           # TV distance of normalised profiles
    routability: float           # P(no channel overflows), model view
    within: bool

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def shape_distance(
    predicted: Sequence[float], routed: Sequence[float]
) -> float:
    """Total-variation distance between two demand profiles.

    Each profile is normalised to a distribution over channels first;
    an all-zero profile is treated as matching anything (distance 0),
    so trivially-unrouted modules cannot fail the shape gate.
    """
    if len(predicted) != len(routed):
        raise VerificationError(
            f"profile lengths differ: {len(predicted)} != {len(routed)}"
        )
    predicted_total = float(sum(predicted))
    routed_total = float(sum(routed))
    if predicted_total <= 0.0 or routed_total <= 0.0:
        return 0.0
    distance = 0.0
    for expected, observed in zip(predicted, routed):
        distance += abs(
            expected / predicted_total - observed / routed_total
        )
    return distance / 2.0


def measure_congestion_case(
    spec: CaseSpec,
    module: Module,
    process: ProcessDatabase,
    bounds: CongestionEnvelopeBounds,
    schedule: Optional[AnnealingSchedule] = None,
    config: Optional[EstimatorConfig] = None,
    capacity: Optional[int] = None,
) -> CongestionEnvelopePoint:
    """Predict and route one case; record both error axes.

    The oracle runs at the estimator's own Section 5 row choice
    (clamped to the device count, exactly like the area envelope), so
    prediction and routing describe the same channel structure.
    Standard-cell cases only — the full-custom flow has no channels.
    """
    if spec.methodology != "standard-cell":
        raise VerificationError(
            f"case {spec.label}: congestion oracle needs a standard-cell "
            f"case, got {spec.methodology}"
        )
    from repro.verify.envelope import verification_schedule

    schedule = schedule or verification_schedule()
    config = config or EstimatorConfig()
    estimate = estimate_standard_cell(module, process, config)
    rows = min(estimate.rows, module.device_count)
    resolved_capacity, _ = resolve_channel_capacity(process, capacity)
    stats = scan_module(
        module,
        device_width=process.device_width,
        device_height=process.device_height,
        port_width=config.port_pitch_override or process.port_pitch,
        power_nets=config.power_nets,
    )
    distribution = congestion_distribution(
        stats.multi_component_nets,
        rows,
        resolved_capacity,
        mode=config.row_spread_mode,
    )
    oracle = layout_standard_cell(
        module, process, rows=rows, seed=spec.seed, schedule=schedule,
        config=config,
    )
    routed = [
        oracle.channel_tracks.get(channel, 0)
        for channel in range(rows + 1)
    ]
    predicted_total = distribution.total_demand
    routed_total = sum(routed)
    total_error = predicted_total / max(1, routed_total) - 1.0
    shape_error = shape_distance(distribution.demand_means, routed)
    return CongestionEnvelopePoint(
        label=spec.label,
        family=spec.family,
        devices=module.device_count,
        rows=rows,
        capacity=resolved_capacity,
        predicted_total=predicted_total,
        routed_total=routed_total,
        total_error=total_error,
        shape_error=shape_error,
        routability=distribution.routability,
        within=bounds.contains(total_error, shape_error),
    )


def summarize_congestion(
    points: Sequence[CongestionEnvelopePoint],
    bounds: CongestionEnvelopeBounds,
) -> Dict[str, object]:
    """Aggregate both error axes, area-envelope style."""
    summary: Dict[str, object] = {
        "cases": len(points),
        "bounds": bounds.to_dict(),
        "violations": sum(1 for point in points if not point.within),
    }
    if points:
        totals = [point.total_error for point in points]
        shapes = [point.shape_error for point in points]
        summary.update(
            min_total_error=min(totals),
            max_total_error=max(totals),
            mean_total_error=sum(totals) / len(totals),
            max_shape_error=max(shapes),
            mean_shape_error=sum(shapes) / len(shapes),
        )
    return summary


def measure_congestion_envelope(
    specs: Sequence[CaseSpec],
    process: ProcessDatabase,
    bounds: Optional[CongestionEnvelopeBounds] = None,
    schedule: Optional[AnnealingSchedule] = None,
) -> dict:
    """The full envelope record over the corpus slice (standard-cell
    cases only)."""
    bounds = bounds or CongestionEnvelopeBounds()
    points: List[CongestionEnvelopePoint] = []
    for spec in specs:
        if spec.methodology != "standard-cell":
            continue
        points.append(
            measure_congestion_case(
                spec, spec.build(), process, bounds, schedule
            )
        )
    if not points:
        raise VerificationError(
            "congestion envelope: no standard-cell cases in the corpus "
            "slice"
        )
    return {
        "schema_version": CONGESTION_ENVELOPE_SCHEMA_VERSION,
        "benchmark": "congestion_envelope",
        "bounds": bounds.to_dict(),
        "cases": [point.to_dict() for point in points],
        "summary": summarize_congestion(points, bounds),
    }


def save_congestion_envelope(record: dict, path: str) -> None:
    """Write the envelope artifact (sorted keys, trailing newline — the
    committed-diff format)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_congestion_envelope(path: str) -> dict:
    """Read an envelope artifact back, validating the schema version."""
    with open(path, "r", encoding="utf-8") as handle:
        record = json.load(handle)
    if record.get("schema_version") != CONGESTION_ENVELOPE_SCHEMA_VERSION:
        raise VerificationError(
            f"congestion envelope {path!r}: schema "
            f"{record.get('schema_version')!r} != "
            f"{CONGESTION_ENVELOPE_SCHEMA_VERSION}"
        )
    return record
