"""Structured tracing for the estimation pipeline.

A :class:`Tracer` records **spans** — named, nested wall-time intervals
with small counter payloads — emitted by hooks inside the estimators
(schematic scan, track expectation, feed-through expectation, aspect
fitting, batch execution).  The design constraints, in order:

1. **Zero cost when off.**  Estimation is a hot path (tens of
   microseconds per call inside floorplan iteration), so the default
   tracer is a :class:`NullTracer` whose ``span()`` returns one shared
   no-op context manager: no span objects, no timestamps, no retained
   allocations.  The benchmark suite runs with the null tracer and must
   stay within noise of ``BENCH_batch_engine.json``.
2. **Survives the process pool.**  Tracer state is per-process; a pool
   worker spawned by :mod:`repro.perf.batch` builds its own collecting
   tracer and ships its span records and counters back to the parent,
   which stitches them under the current span with :meth:`Tracer.absorb`
   and merges the counters.  A ``jobs=4`` run therefore yields the same
   merged counters as a serial run.
3. **Plain-data records.**  Spans serialize to dicts (and to JSONL via
   :mod:`repro.obs.jsonl`) so they cross process boundaries by pickling
   and land on disk without custom decoders.

Usage::

    from repro.obs.trace import Tracer, use_tracer

    tracer = Tracer()
    with use_tracer(tracer):
        estimate_standard_cell(module, process)     # hooks fire
    tracer.records()          # span dicts, in start order
    tracer.metrics.counters() # additive counters

Instrumentation sites follow one pattern::

    tracer = current_tracer()
    with tracer.span("sc.tracks") as span:
        ...
        if tracer.enabled:
            span.set("tracks", total)
            tracer.metrics.incr("sc.tracks_total", total)

The ``enabled`` guard keeps payload formatting and counter updates off
the untraced path entirely.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Union

from repro.obs.metrics import MetricsRegistry

Number = Union[int, float]

#: Version of the span-record shape (see repro.obs.jsonl for the file
#: framing that carries it).
SPAN_SCHEMA_VERSION = 1


class _NullSpan:
    """The shared do-nothing span.

    One instance serves every ``span()`` call on a :class:`NullTracer`;
    entering and exiting it allocates nothing and its mutators are
    no-ops, which is what makes untraced estimation free.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, name: str, value) -> None:
        pass

    def add(self, name: str, value: Number = 1) -> None:
        pass


NULL_SPAN = _NullSpan()


class NullTracer:
    """The default tracer: collects nothing, costs (almost) nothing."""

    __slots__ = ("metrics",)

    enabled = False

    def __init__(self) -> None:
        # Never written by hooks (they guard on ``enabled``), but present
        # so ``tracer.metrics`` is always a valid attribute.
        self.metrics = MetricsRegistry()

    def span(self, name=None, **payload) -> _NullSpan:
        return NULL_SPAN

    def records(self) -> List[dict]:
        return []

    def absorb(self, records, parent_id: Optional[int] = None) -> None:
        pass


class Span:
    """A live span: a named interval on a :class:`Tracer`'s stack.

    Use as a context manager (via :meth:`Tracer.span`); ``set`` attaches
    a payload value, ``add`` accumulates one.  The backing storage is a
    plain dict so finished spans are directly picklable/serializable.
    """

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", record: dict):
        self._tracer = tracer
        self.record = record

    def set(self, name: str, value) -> None:
        self.record["payload"][name] = value

    def add(self, name: str, value: Number = 1) -> None:
        payload = self.record["payload"]
        payload[name] = payload.get(name, 0) + value

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._pop(self)
        return False


class Tracer:
    """Collecting tracer: records spans and owns a metrics registry."""

    __slots__ = ("metrics", "_records", "_stack", "_next_id", "_epoch")

    enabled = True

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._records: List[dict] = []
        self._stack: List[Span] = []
        self._next_id = 0
        self._epoch = time.perf_counter()

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------
    def span(self, name: str, **payload) -> Span:
        """Create a span; enter it with ``with`` to start the clock."""
        record = {
            "name": name,
            "id": -1,            # assigned on enter
            "parent": None,      # assigned on enter
            "depth": 0,          # assigned on enter
            "start_s": 0.0,
            "duration_s": 0.0,
            "payload": dict(payload),
        }
        return Span(self, record)

    def _push(self, span: Span) -> None:
        record = span.record
        record["id"] = self._next_id
        self._next_id += 1
        if self._stack:
            parent = self._stack[-1].record
            record["parent"] = parent["id"]
            record["depth"] = parent["depth"] + 1
        record["start_s"] = time.perf_counter() - self._epoch
        self._stack.append(span)
        # Record in start order so parents precede their children.
        self._records.append(record)

    def _pop(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.record['name']!r} exited out of order"
            )
        self._stack.pop()
        record = span.record
        record["duration_s"] = (
            time.perf_counter() - self._epoch - record["start_s"]
        )

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def records(self) -> List[dict]:
        """Finished span records, in start order (parents first)."""
        if self._stack:
            open_names = [span.record["name"] for span in self._stack]
            raise RuntimeError(f"spans still open: {open_names}")
        return list(self._records)

    def absorb(
        self, records: List[dict], parent_id: Optional[int] = None
    ) -> None:
        """Stitch span records from another tracer (a pool worker) in.

        Ids are remapped into this tracer's id space; the foreign trace's
        root spans are re-parented under ``parent_id`` (default: the
        currently open span, so a worker's trace nests under the batch
        span that dispatched it).  Worker wall-times are kept as-is —
        they are relative to the *worker's* epoch and only durations are
        comparable across processes.
        """
        if not records:
            return
        if parent_id is None and self._stack:
            parent_id = self._stack[-1].record["id"]
        base_depth = 0
        if parent_id is not None:
            for record in self._records:
                if record["id"] == parent_id:
                    base_depth = record["depth"] + 1
                    break
        offset = self._next_id
        max_id = -1
        for record in records:
            merged = dict(record)
            merged["payload"] = dict(record.get("payload", {}))
            merged["id"] = record["id"] + offset
            if record.get("parent") is None:
                merged["parent"] = parent_id
                merged["depth"] = base_depth
            else:
                merged["parent"] = record["parent"] + offset
                merged["depth"] = record["depth"] + base_depth
            max_id = max(max_id, merged["id"])
            self._records.append(merged)
        self._next_id = max_id + 1

    def span_names(self) -> Dict[str, int]:
        """Name -> occurrence count over the finished records."""
        names: Dict[str, int] = {}
        for record in self.records():
            names[record["name"]] = names.get(record["name"], 0) + 1
        return dict(sorted(names.items()))


# ----------------------------------------------------------------------
# the installed tracer
# ----------------------------------------------------------------------
_NULL_TRACER = NullTracer()
_current: List[Union[Tracer, NullTracer]] = [_NULL_TRACER]


def current_tracer() -> Union[Tracer, NullTracer]:
    """The tracer active in this process (a NullTracer by default)."""
    return _current[-1]


@contextmanager
def use_tracer(tracer: Union[Tracer, NullTracer]) -> Iterator[None]:
    """Install ``tracer`` as the current tracer for the block."""
    _current.append(tracer)
    try:
        yield
    finally:
        _current.pop()


def reset_current_tracer() -> None:
    """Drop any installed tracers, restoring the NullTracer default.

    Pool workers call this from their initializer: under the ``fork``
    start method a worker inherits the parent's tracer stack, and
    recording into that copy would silently lose the spans (the parent
    never sees them).  Resetting makes the worker-capture path
    (:mod:`repro.perf.batch`) trace into a fresh local tracer and ship
    the records back explicitly.
    """
    _current[:] = [_NULL_TRACER]
