"""repro.obs — estimation observability.

Four pieces, layered bottom-up:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`: additive
  counters that merge across processes, plus a live view of the
  :mod:`repro.perf.kernels` cache statistics, behind one snapshot API.
* :mod:`repro.obs.trace` — :class:`Tracer` records nested wall-time
  spans from hooks inside the estimators; the default
  :class:`NullTracer` makes untraced estimation free.
* :mod:`repro.obs.jsonl` — the trace file format (JSONL: one meta
  header, one line per span, one trailing metrics snapshot) with a
  fail-fast validator.
* :mod:`repro.obs.explain` — the ``mae explain`` report: per-net
  Eq. 2-11 terms audited against the final Eq. 12/13 area.  Imported
  lazily (``from repro.obs.explain import ...``), not re-exported here,
  because it depends on :mod:`repro.core` which itself uses the tracer.

See ``docs/OBSERVABILITY.md`` for the architecture and span schema.
"""

from repro.obs.metrics import (
    LatencyTracker,
    MetricsRegistry,
    get_registry,
    kernel_cache_snapshot,
    latency_percentiles,
)
from repro.obs.trace import (
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    use_tracer,
)

__all__ = [
    "LatencyTracker",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "Tracer",
    "current_tracer",
    "get_registry",
    "kernel_cache_snapshot",
    "latency_percentiles",
    "use_tracer",
]
