"""JSONL serialization of traces.

A trace file is newline-delimited JSON, one object per line, three
record kinds in a fixed order:

1. exactly one ``meta`` header line::

       {"kind": "meta", "schema_version": 1, "created_unix": ...,
        "span_count": N}

2. ``N`` ``span`` lines, in start order (parents precede children)::

       {"kind": "span", "name": "sc.estimate", "id": 3, "parent": 2,
        "depth": 1, "start_s": 0.0012, "duration_s": 0.0003,
        "payload": {"rows": 4, "tracks": 120}}

   ``start_s``/``duration_s`` are seconds relative to the recording
   tracer's epoch; spans absorbed from pool workers keep their worker
   epoch, so only durations are comparable across processes.

3. exactly one trailing ``metrics`` line carrying the tracer's
   registry snapshot (additive counters + per-process kernel-cache
   statistics)::

       {"kind": "metrics", "counters": {...}, "kernels": {...}}

:func:`read_trace` validates all of this and fails fast with
:class:`~repro.errors.ObservabilityError` on any malformed line, so a
corrupt trace never silently pollutes downstream tooling.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Union

from repro.errors import ObservabilityError
from repro.obs.trace import SPAN_SCHEMA_VERSION, NullTracer, Tracer


def trace_to_lines(tracer: Union[Tracer, NullTracer]) -> List[str]:
    """Serialize a finished trace to its JSONL lines (no newlines)."""
    records = tracer.records()
    meta = {
        "kind": "meta",
        "schema_version": SPAN_SCHEMA_VERSION,
        "created_unix": time.time(),
        "span_count": len(records),
    }
    lines = [json.dumps(meta, sort_keys=True)]
    for record in records:
        lines.append(json.dumps({"kind": "span", **record}, sort_keys=True))
    lines.append(
        json.dumps(
            {"kind": "metrics", **tracer.metrics.snapshot()}, sort_keys=True
        )
    )
    return lines


def write_trace(
    tracer: Union[Tracer, NullTracer], path: Union[str, Path]
) -> Path:
    """Write a finished trace to ``path``; returns the path."""
    path = Path(path)
    try:
        path.write_text("\n".join(trace_to_lines(tracer)) + "\n")
    except OSError as exc:
        raise ObservabilityError(f"cannot write trace {path}: {exc}") from exc
    return path


def read_trace(path: Union[str, Path]) -> dict:
    """Read and validate a trace file.

    Returns ``{"meta": {...}, "spans": [...], "metrics": {...}}``.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ObservabilityError(f"cannot read trace {path}: {exc}") from exc

    objects = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            objects.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"{path}:{number}: not valid JSON: {exc}"
            ) from exc
    return validate_trace(objects, source=str(path))


def validate_trace(objects: List[dict], source: str = "<trace>") -> dict:
    """Validate parsed trace records; returns the structured trace."""
    if not objects:
        raise ObservabilityError(f"{source}: trace is empty")

    meta = objects[0]
    if not isinstance(meta, dict) or meta.get("kind") != "meta":
        raise ObservabilityError(
            f"{source}: first record must be the meta header, got "
            f"{meta!r:.80}"
        )
    if meta.get("schema_version") != SPAN_SCHEMA_VERSION:
        raise ObservabilityError(
            f"{source}: unsupported schema_version "
            f"{meta.get('schema_version')!r} (expected {SPAN_SCHEMA_VERSION})"
        )

    tail = objects[-1]
    if not isinstance(tail, dict) or tail.get("kind") != "metrics":
        raise ObservabilityError(
            f"{source}: last record must be the metrics snapshot"
        )
    if not isinstance(tail.get("counters"), dict) or not isinstance(
        tail.get("kernels"), dict
    ):
        raise ObservabilityError(
            f"{source}: metrics record needs 'counters' and 'kernels' objects"
        )

    spans = objects[1:-1]
    if meta.get("span_count") != len(spans):
        raise ObservabilityError(
            f"{source}: meta declares {meta.get('span_count')} spans, "
            f"file has {len(spans)}"
        )
    seen_ids: Dict[int, dict] = {}
    for index, span in enumerate(spans):
        where = f"{source}: span {index}"
        if not isinstance(span, dict) or span.get("kind") != "span":
            raise ObservabilityError(f"{where}: not a span record")
        _require(span, "name", str, where)
        span_id = _require(span, "id", int, where)
        if span_id in seen_ids:
            raise ObservabilityError(f"{where}: duplicate id {span_id}")
        parent = span.get("parent")
        if parent is not None:
            if not isinstance(parent, int):
                raise ObservabilityError(
                    f"{where}: parent must be an int or null"
                )
            if parent not in seen_ids:
                # Start order puts parents before children; a forward
                # reference means the trace was reordered or truncated.
                raise ObservabilityError(
                    f"{where}: parent {parent} not seen before child "
                    f"{span_id}"
                )
        depth = _require(span, "depth", int, where)
        if depth < 0:
            raise ObservabilityError(f"{where}: negative depth {depth}")
        if parent is not None and depth != seen_ids[parent]["depth"] + 1:
            raise ObservabilityError(
                f"{where}: depth {depth} does not nest under parent depth "
                f"{seen_ids[parent]['depth']}"
            )
        for field in ("start_s", "duration_s"):
            value = _require(span, field, (int, float), where)
            if value < 0:
                raise ObservabilityError(
                    f"{where}: {field} must be >= 0, got {value}"
                )
        if not isinstance(span.get("payload"), dict):
            raise ObservabilityError(f"{where}: payload must be an object")
        seen_ids[span_id] = span

    return {"meta": meta, "spans": spans, "metrics": tail}


def _require(record: dict, key: str, types, where: str):
    if key not in record:
        raise ObservabilityError(f"{where}: missing required key {key!r}")
    value = record[key]
    if isinstance(value, bool) or not isinstance(value, types):
        raise ObservabilityError(
            f"{where}: {key!r} has type {type(value).__name__}"
        )
    return value
