"""The unified metrics registry.

PR 1 left the repository with one observability island: the kernel
caches of :mod:`repro.perf.kernels` count their own hits and misses.
This module puts every counter behind one snapshot API:

* **Estimation counters** — plain additive ``name -> number`` values
  recorded by the span hooks in :mod:`repro.core` and
  :mod:`repro.perf.batch` (estimates run, nets processed, expected
  feed-through mass, batch tasks, ...).  Additive counters merge across
  processes: a pool worker ships its counter dict back to the parent,
  which folds it in with :meth:`MetricsRegistry.merge_counters`, so a
  ``jobs=4`` run reports the same totals as the serial run.
* **Kernel-cache statistics** — read live from
  :func:`repro.perf.kernels.kernel_cache_stats` at snapshot time.
  These are *per-process* (each pool worker warms its own cache) and
  deliberately kept out of the additive counter space; consumers that
  compare serial and parallel runs compare :meth:`counters`, not the
  cache section.

The default registry (:func:`get_registry`) is process-global so code
that only wants a snapshot — ``mae bench`` reporting cache hit rates —
never needs to construct anything.  Tracers carry their *own* registry
(see :mod:`repro.obs.trace`) so a traced run's counters are isolated
from other work in the process.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Sequence, Union

Number = Union[int, float]


class MetricsRegistry:
    """Additive counters plus a live view of the kernel-cache stats."""

    __slots__ = ("_counters",)

    def __init__(self) -> None:
        self._counters: Dict[str, Number] = {}

    # ------------------------------------------------------------------
    # additive counters
    # ------------------------------------------------------------------
    def incr(self, name: str, value: Number = 1) -> None:
        """Add ``value`` (int or float) to the counter ``name``."""
        self._counters[name] = self._counters.get(name, 0) + value

    def counters(self) -> Dict[str, Number]:
        """A sorted copy of the additive counters."""
        return dict(sorted(self._counters.items()))

    def merge_counters(self, other: Mapping[str, Number]) -> None:
        """Fold another counter dict in additively.

        This is the cross-process merge: :func:`repro.perf.batch`
        collects each pool worker's counters and merges them here, so
        totals are independent of how the work was scheduled.
        """
        for name, value in other.items():
            self.incr(name, value)

    def clear(self) -> None:
        """Drop every additive counter (kernel stats are not touched)."""
        self._counters.clear()

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """One JSON-ready view of everything observable.

        ``{"counters": {...}, "kernels": {name: {hits, misses, entries,
        bypasses, hit_rate}}, "plans": {...}, "triangle": {...},
        "backend": {default, available, backends}}`` — the
        ``kernels``, ``plans``, ``triangle``, and ``backend`` sections
        are read live from this process's caches and match the shapes
        recorded in ``BENCH_batch_engine.json``.
        """
        # Imported lazily for the same reason as kernel_cache_snapshot.
        from repro.perf.backends import backend_stats
        from repro.perf.kernels import surjection_triangle_stats
        from repro.perf.plan import plan_cache_stats

        return {
            "counters": self.counters(),
            "kernels": kernel_cache_snapshot(),
            "plans": plan_cache_stats(),
            "triangle": surjection_triangle_stats(),
            "backend": backend_stats(),
        }


class LatencyTracker:
    """Thread-safe latency reservoir with quantile summaries.

    The estimation service records one observation per request and
    reports p50/p99 through ``/metrics`` and the bench serve phase.
    The reservoir keeps the most recent ``capacity`` samples (a ring
    buffer, so a long-running server's quantiles track current load,
    not its start-up transient) while ``count``/``total`` cover the
    tracker's whole lifetime.
    """

    __slots__ = ("_lock", "_samples", "_capacity", "_next", "_count",
                 "_total", "_max")

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._lock = threading.Lock()
        self._samples: List[float] = []
        self._capacity = capacity
        self._next = 0  # ring-buffer write cursor once at capacity
        self._count = 0
        self._total = 0.0
        self._max = 0.0

    def observe(self, seconds: float) -> None:
        """Record one latency observation, in seconds."""
        value = float(seconds)
        with self._lock:
            if len(self._samples) < self._capacity:
                self._samples.append(value)
            else:
                self._samples[self._next] = value
                self._next = (self._next + 1) % self._capacity
            self._count += 1
            self._total += value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        """Lifetime number of observations."""
        with self._lock:
            return self._count

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0..1) of the retained samples, in
        seconds; 0.0 when nothing has been observed."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be within [0, 1], got {q}")
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return 0.0
        return samples[min(len(samples) - 1, int(q * len(samples)))]

    def summary(self) -> Dict[str, Number]:
        """JSON-ready ``{count, mean_ms, p50_ms, p99_ms, max_ms}``."""
        with self._lock:
            samples = sorted(self._samples)
            count = self._count
            total = self._total
            peak = self._max

        def pick(q: float) -> float:
            if not samples:
                return 0.0
            return samples[min(len(samples) - 1, int(q * len(samples)))]

        return {
            "count": count,
            "mean_ms": round(1000.0 * total / count, 3) if count else 0.0,
            "p50_ms": round(1000.0 * pick(0.50), 3),
            "p99_ms": round(1000.0 * pick(0.99), 3),
            "max_ms": round(1000.0 * peak, 3),
        }


def latency_percentiles(
    seconds: Sequence[float], quantiles: Sequence[float] = (0.50, 0.99)
) -> Dict[str, float]:
    """Quantiles of a finished sample set, keyed ``p50_ms``-style.

    The one-shot companion to :class:`LatencyTracker` for callers that
    already hold every observation (the serve load test, the bench
    serve phase): same selection rule, no locking.
    """
    samples = sorted(float(value) for value in seconds)
    result: Dict[str, float] = {}
    for q in quantiles:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be within [0, 1], got {q}")
        if samples:
            value = samples[min(len(samples) - 1, int(q * len(samples)))]
        else:
            value = 0.0
        label = f"p{q * 100:g}".replace(".", "_")
        result[f"{label}_ms"] = round(1000.0 * value, 3)
    return result


def kernel_cache_snapshot() -> Dict[str, Dict[str, Number]]:
    """The kernel-cache section of a snapshot, as plain JSON types.

    This is the supported way to report cache statistics (``mae bench``
    uses it); it shields consumers from the internals of
    :mod:`repro.perf.kernels`.
    """
    # Imported here, not at module top, so repro.obs stays import-light
    # and dependency-free for the tracer hot path.
    from repro.perf.kernels import kernel_cache_stats

    return {
        name: {
            "hits": stats.hits,
            "misses": stats.misses,
            "entries": stats.entries,
            "bypasses": stats.bypasses,
            "hit_rate": round(stats.hit_rate, 4),
        }
        for name, stats in sorted(kernel_cache_stats().items())
    }


_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global default registry."""
    return _DEFAULT_REGISTRY
