"""The unified metrics registry.

PR 1 left the repository with one observability island: the kernel
caches of :mod:`repro.perf.kernels` count their own hits and misses.
This module puts every counter behind one snapshot API:

* **Estimation counters** — plain additive ``name -> number`` values
  recorded by the span hooks in :mod:`repro.core` and
  :mod:`repro.perf.batch` (estimates run, nets processed, expected
  feed-through mass, batch tasks, ...).  Additive counters merge across
  processes: a pool worker ships its counter dict back to the parent,
  which folds it in with :meth:`MetricsRegistry.merge_counters`, so a
  ``jobs=4`` run reports the same totals as the serial run.
* **Kernel-cache statistics** — read live from
  :func:`repro.perf.kernels.kernel_cache_stats` at snapshot time.
  These are *per-process* (each pool worker warms its own cache) and
  deliberately kept out of the additive counter space; consumers that
  compare serial and parallel runs compare :meth:`counters`, not the
  cache section.

The default registry (:func:`get_registry`) is process-global so code
that only wants a snapshot — ``mae bench`` reporting cache hit rates —
never needs to construct anything.  Tracers carry their *own* registry
(see :mod:`repro.obs.trace`) so a traced run's counters are isolated
from other work in the process.
"""

from __future__ import annotations

from typing import Dict, Mapping, Union

Number = Union[int, float]


class MetricsRegistry:
    """Additive counters plus a live view of the kernel-cache stats."""

    __slots__ = ("_counters",)

    def __init__(self) -> None:
        self._counters: Dict[str, Number] = {}

    # ------------------------------------------------------------------
    # additive counters
    # ------------------------------------------------------------------
    def incr(self, name: str, value: Number = 1) -> None:
        """Add ``value`` (int or float) to the counter ``name``."""
        self._counters[name] = self._counters.get(name, 0) + value

    def counters(self) -> Dict[str, Number]:
        """A sorted copy of the additive counters."""
        return dict(sorted(self._counters.items()))

    def merge_counters(self, other: Mapping[str, Number]) -> None:
        """Fold another counter dict in additively.

        This is the cross-process merge: :func:`repro.perf.batch`
        collects each pool worker's counters and merges them here, so
        totals are independent of how the work was scheduled.
        """
        for name, value in other.items():
            self.incr(name, value)

    def clear(self) -> None:
        """Drop every additive counter (kernel stats are not touched)."""
        self._counters.clear()

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """One JSON-ready view of everything observable.

        ``{"counters": {...}, "kernels": {name: {hits, misses, entries,
        bypasses, hit_rate}}, "plans": {...}, "triangle": {...},
        "backend": {default, available, backends}}`` — the
        ``kernels``, ``plans``, ``triangle``, and ``backend`` sections
        are read live from this process's caches and match the shapes
        recorded in ``BENCH_batch_engine.json``.
        """
        # Imported lazily for the same reason as kernel_cache_snapshot.
        from repro.perf.backends import backend_stats
        from repro.perf.kernels import surjection_triangle_stats
        from repro.perf.plan import plan_cache_stats

        return {
            "counters": self.counters(),
            "kernels": kernel_cache_snapshot(),
            "plans": plan_cache_stats(),
            "triangle": surjection_triangle_stats(),
            "backend": backend_stats(),
        }


def kernel_cache_snapshot() -> Dict[str, Dict[str, Number]]:
    """The kernel-cache section of a snapshot, as plain JSON types.

    This is the supported way to report cache statistics (``mae bench``
    uses it); it shields consumers from the internals of
    :mod:`repro.perf.kernels`.
    """
    # Imported here, not at module top, so repro.obs stays import-light
    # and dependency-free for the tracer hot path.
    from repro.perf.kernels import kernel_cache_stats

    return {
        name: {
            "hits": stats.hits,
            "misses": stats.misses,
            "entries": stats.entries,
            "bypasses": stats.bypasses,
            "hit_rate": round(stats.hit_rate, 4),
        }
        for name, stats in sorted(kernel_cache_stats().items())
    }


_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global default registry."""
    return _DEFAULT_REGISTRY
