"""Term-by-term audit of an estimate (``mae explain``).

The paper's value is interpretability: Eqs. 2-11 decompose
standard-cell area into per-net track expectations and central-row
feed-through probabilities, and Eq. 13 decomposes full-custom area into
per-net interconnection areas.  This module recomputes every one of
those terms *per net* — not from the histogram the estimator uses —
prints them against the final Eq. 12/13 area, and **verifies** that the
printed terms re-assemble into exactly the area the estimator reported.
If explain and estimator ever drift apart, :meth:`verify` raises
instead of printing a plausible-looking lie.

Line-to-equation mapping (also in README "Interpreting an estimate"):

========================  =============================================
Report line               Paper equation
========================  =============================================
``scan`` header           Eq. 1 (N, H, W_avg from the schematic scan)
per-net ``E(i)``          Eqs. 2-3 (row-spread expectation)
per-net ``tracks``        Eq. 3 rounded up ("at least one track")
per-net ``P(central)``    Eq. 8 (general) / Eq. 9 (two-component)
``mean M`` line           Eq. 10 (binomial mean over H nets)
``E(M)`` line             Eq. 11 (rounded up)
``width``/``height``      Eq. 12 factors
``area``                  Eq. 12 / Eq. 13
``aspect``                Eq. 14
========================  =============================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.core.config import EstimatorConfig
from repro.core.full_custom import (
    estimate_full_custom,
    net_interconnection_area,
)
from repro.core.probability import (
    central_feedthrough_probability,
    expected_feedthroughs,
    expected_row_spread,
    tracks_for_net,
)
from repro.core.results import FullCustomEstimate, StandardCellEstimate
from repro.core.standard_cell import estimate_standard_cell_from_stats
from repro.errors import EstimationError, ObservabilityError
from repro.netlist.model import Module
from repro.netlist.stats import ModuleStatistics, scan_module
from repro.reporting import render_table
from repro.technology.process import ProcessDatabase
from repro.units import round_up

#: Relative tolerance for the "terms sum to the reported area" checks.
AREA_TOLERANCE = 1e-9


@dataclass(frozen=True)
class NetTerm:
    """One net's contribution to the standard-cell estimate."""

    net: str
    components: int         # D
    expected_rows: float    # E(i), Eq. 3
    tracks: int             # ceil(E(i)), Eq. 3
    feed_probability: float  # P at the central row, Eq. 8/9


@dataclass(frozen=True)
class StandardCellExplanation:
    """Every term of Eq. 12, per net and assembled."""

    estimate: StandardCellEstimate
    stats: ModuleStatistics
    config: EstimatorConfig
    process_name: str
    row_height: float
    track_pitch: float
    feedthrough_width: float
    net_terms: Tuple[NetTerm, ...]
    single_component_nets: int
    raw_tracks: int          # sum of per-net tracks, pre-sharing
    tracks: int              # after track model / sharing factor
    feed_mean: float         # Eq. 10 binomial mean
    feedthroughs: int        # Eq. 11, rounded up

    @property
    def rows(self) -> int:
        return self.estimate.rows

    def width_terms(self) -> Tuple[float, float]:
        """(cell width per row, feed-through width) — Eq. 12 width."""
        return (
            self.stats.average_width * self.stats.device_count / self.rows,
            self.feedthroughs * self.feedthrough_width,
        )

    def height_terms(self) -> Tuple[float, float]:
        """(row stack height, track stack height) — Eq. 12 height."""
        return (
            self.rows * self.row_height,
            self.tracks * self.track_pitch,
        )

    def reconstructed_area(self) -> float:
        """Eq. 12 reassembled from the per-net terms shown in the report."""
        cell_width, feed_width = self.width_terms()
        row_height, track_height = self.height_terms()
        return (cell_width + feed_width) * (row_height + track_height)

    def verify(self) -> None:
        """Cross-check the per-net terms against the estimator's output.

        Raises :class:`ObservabilityError` if the terms do not
        re-assemble (within fp tolerance) into the reported estimate —
        the audit refuses to print numbers that do not add up.
        """
        per_net_tracks = sum(term.tracks for term in self.net_terms)
        if per_net_tracks != self.raw_tracks:
            raise ObservabilityError(
                f"per-net tracks sum to {per_net_tracks}, histogram total "
                f"is {self.raw_tracks}"
            )
        if self.tracks != self.estimate.tracks:
            raise ObservabilityError(
                f"explained track total {self.tracks} != estimator "
                f"{self.estimate.tracks}"
            )
        if self.feedthroughs != self.estimate.feedthroughs:
            raise ObservabilityError(
                f"explained feed-throughs {self.feedthroughs} != estimator "
                f"{self.estimate.feedthroughs}"
            )
        per_net_mean = sum(term.feed_probability for term in self.net_terms)
        if abs(per_net_mean - self.feed_mean) > 1e-9 * max(
            1.0, abs(self.feed_mean)
        ):
            raise ObservabilityError(
                f"per-net feed-through probabilities sum to {per_net_mean}, "
                f"binomial mean is {self.feed_mean}"
            )
        area = self.reconstructed_area()
        if abs(area - self.estimate.area) > AREA_TOLERANCE * max(
            1.0, abs(self.estimate.area)
        ):
            raise ObservabilityError(
                f"reconstructed area {area} != estimated "
                f"{self.estimate.area}"
            )


@dataclass(frozen=True)
class FullCustomExplanation:
    """Every term of Eq. 13, per net and assembled."""

    estimate: FullCustomEstimate
    stats: ModuleStatistics
    config: EstimatorConfig
    process_name: str
    net_areas: Tuple[Tuple[str, int, float], ...]  # (net, D, A_j)

    def reconstructed_area(self) -> float:
        """Eq. 13 reassembled: device area + sum of per-net A_j."""
        return self.estimate.device_area + sum(
            area for _, _, area in self.net_areas
        )

    def verify(self) -> None:
        area = self.reconstructed_area()
        if abs(area - self.estimate.area) > AREA_TOLERANCE * max(
            1.0, abs(self.estimate.area)
        ):
            raise ObservabilityError(
                f"reconstructed area {area} != estimated "
                f"{self.estimate.area}"
            )


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------
def explain_standard_cell(
    module: Module,
    process: ProcessDatabase,
    config: Optional[EstimatorConfig] = None,
) -> StandardCellExplanation:
    """Recompute the standard-cell estimate with per-net attribution."""
    config = config or EstimatorConfig()
    stats = scan_module(
        module,
        device_width=process.device_width,
        device_height=process.device_height,
        port_width=config.port_pitch_override or process.port_pitch,
        power_nets=config.power_nets,
    )
    estimate = estimate_standard_cell_from_stats(stats, process, config)
    rows = estimate.rows

    terms = []
    singles = 0
    raw_tracks = 0
    for net in sorted(
        module.iter_signal_nets(config.power_nets), key=lambda n: n.name
    ):
        components = net.component_count
        if components == 0:
            continue  # port-only net: the scan skips these too
        if components == 1:
            singles += 1
            continue
        tracks = tracks_for_net(components, rows, config.row_spread_mode)
        raw_tracks += tracks
        if rows < 3:
            probability = 0.0
        elif config.feedthrough_model == "two-component":
            probability = central_feedthrough_probability(rows)
        else:
            probability = central_feedthrough_probability(
                rows, components, model="general"
            )
        terms.append(
            NetTerm(
                net=net.name,
                components=components,
                expected_rows=expected_row_spread(
                    components, rows, config.row_spread_mode
                ),
                tracks=tracks,
                feed_probability=probability,
            )
        )

    # Re-assemble the totals with the estimator's exact arithmetic (fp
    # evaluation order matters at the Eq. 3/11 ceil boundaries), so
    # verify() compares like for like.
    if config.track_model == "shared":
        from repro.core.sharing import estimate_shared_tracks

        shared = estimate_shared_tracks(
            stats.multi_component_nets,
            rows,
            config.congestion_margin,
            config.row_spread_mode,
        ).total_tracks
        tracks_total = min(shared, raw_tracks)
    else:
        tracks_total = math.ceil(raw_tracks * config.track_sharing_factor)

    if rows < 3 or not terms:
        feed_mean = 0.0
        feedthroughs = 0
    elif config.feedthrough_model == "two-component":
        probability = central_feedthrough_probability(rows)
        feed_mean = stats.routed_net_count * probability
        feedthroughs = expected_feedthroughs(
            stats.routed_net_count, probability
        )
    else:
        feed_mean = 0.0
        for components, count in stats.multi_component_nets:
            feed_mean += count * central_feedthrough_probability(
                rows, components, model="general"
            )
        feedthroughs = round_up(feed_mean)

    explanation = StandardCellExplanation(
        estimate=estimate,
        stats=stats,
        config=config,
        process_name=process.name,
        row_height=process.row_height,
        track_pitch=process.track_pitch,
        feedthrough_width=process.feedthrough_width,
        net_terms=tuple(terms),
        single_component_nets=singles,
        raw_tracks=raw_tracks,
        tracks=tracks_total,
        feed_mean=feed_mean,
        feedthroughs=feedthroughs,
    )
    explanation.verify()
    return explanation


def explain_full_custom(
    module: Module,
    process: ProcessDatabase,
    config: Optional[EstimatorConfig] = None,
) -> FullCustomExplanation:
    """Recompute the full-custom estimate with per-net attribution."""
    config = config or EstimatorConfig()
    stats = scan_module(
        module,
        device_width=process.device_width,
        device_height=process.device_height,
        port_width=config.port_pitch_override or process.port_pitch,
        power_nets=config.power_nets,
    )
    estimate = estimate_full_custom(module, process, config, stats=stats)

    net_areas = []
    for net in sorted(
        module.iter_signal_nets(config.power_nets), key=lambda n: n.name
    ):
        if net.component_count == 0:
            continue
        area = net_interconnection_area(
            net, module, process, config, stats.average_width
        )
        net_areas.append((net.name, net.component_count, area))

    explanation = FullCustomExplanation(
        estimate=estimate,
        stats=stats,
        config=config,
        process_name=process.name,
        net_areas=tuple(net_areas),
    )
    explanation.verify()
    return explanation


# ----------------------------------------------------------------------
# module resolution (files or the built-in suites)
# ----------------------------------------------------------------------
def resolve_module(
    name_or_path: str, process: ProcessDatabase
) -> Module:
    """``mae explain`` input: a schematic file, or a built-in suite
    module name (``t1_*`` / ``t2_*``), so any Table 1/2 row can be
    audited without shipping a netlist file."""
    path = Path(name_or_path)
    if path.exists():
        from repro.core.estimator import ModuleAreaEstimator

        return ModuleAreaEstimator(process).load_schematic(path)
    suites = suite_modules()
    if name_or_path in suites:
        return suites[name_or_path]
    known = ", ".join(sorted(suites))
    raise EstimationError(
        f"{name_or_path!r} is neither a schematic file nor a built-in "
        f"suite module (known suite modules: {known})"
    )


def suite_modules() -> dict:
    """Name -> Module for every frozen Table 1 / Table 2 suite case."""
    from repro.workloads.suites import table1_suite, table2_suite

    modules = {}
    for case in table1_suite():
        modules[case.module.name] = case.module
    for case in table2_suite():
        modules[case.module.name] = case.module
    return modules


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def format_standard_cell_explanation(
    explanation: StandardCellExplanation,
) -> str:
    """The ``mae explain`` standard-cell report."""
    est = explanation.estimate
    stats = explanation.stats
    config = explanation.config
    rows = explanation.rows

    headers = ("Net", "D", "E(i) Eq.3", "Tracks", "P(central) Eq.8/9")
    body = [
        (
            term.net,
            term.components,
            f"{term.expected_rows:.4f}",
            term.tracks,
            f"{term.feed_probability:.6f}",
        )
        for term in explanation.net_terms
    ]
    table = render_table(
        headers, body,
        title=f"Per-net terms ({len(body)} routed nets, "
              f"{explanation.single_component_nets} single-component nets "
              f"contribute nothing)",
    )

    cell_width, feed_width = explanation.width_terms()
    row_height, track_height = explanation.height_terms()
    area = explanation.reconstructed_area()
    if config.track_model == "shared":
        track_note = (
            f"shared-density model (Section 7) caps the "
            f"{explanation.raw_tracks} raw tracks at {explanation.tracks}"
        )
    elif config.track_sharing_factor != 1.0:
        track_note = (
            f"x sharing factor {config.track_sharing_factor} "
            f"-> {explanation.tracks} tracks"
        )
    else:
        track_note = "upper bound: one net per track (the paper's model)"

    lines = [
        f"standard-cell estimate of {stats.module_name} "
        f"({explanation.process_name}, n={rows} rows)",
        "",
        f"Eq. 1    scan: N={stats.device_count} devices, "
        f"H={stats.net_count} signal nets, "
        f"W_avg={stats.average_width:.3f} lambda",
        "",
        table,
        "",
        f"Eqs. 2-3  total tracks: sum of per-net tracks = "
        f"{explanation.raw_tracks}  ({track_note})",
        f"Eq. 10    feed-through mean: sum of per-net P = "
        f"{explanation.feed_mean:.4f} over "
        f"{len(explanation.net_terms)} routed nets "
        f"(model={config.feedthrough_model})",
        f"Eq. 11    E(M) = ceil({explanation.feed_mean:.4f}) = "
        f"{explanation.feedthroughs} feed-throughs per row",
        "",
        "Eq. 12    area assembly:",
        f"  width  = W_avg*N/n + E(M)*f_w = {cell_width:.3f} + "
        f"{feed_width:.3f} = {cell_width + feed_width:.3f} lambda",
        f"  height = n*r_h + T*t_p = {row_height:.3f} + "
        f"{track_height:.3f} = {row_height + track_height:.3f} lambda",
        f"  area   = width * height = {area:.3f} lambda^2",
        f"  estimator reports {est.area:.3f} lambda^2 "
        f"(terms match within fp tolerance)",
        f"Eq. 14    aspect ratio = width/height = {est.aspect_ratio:.4f}",
    ]
    return "\n".join(lines)


#: Width of the ``mae explain --congestion`` heat bars (characters at
#: 100% of channel capacity).
_HEAT_WIDTH = 24

#: Human-readable labels for the capacity fallback chain
#: (:data:`repro.congestion.model.CAPACITY_SOURCES`).
_CAPACITY_SOURCE_LABELS = {
    "override": "explicit --channel-capacity override",
    "process": "process database",
    "default": "model default (no capacity in process description)",
}


def format_congestion_explanation(report) -> str:
    """The ``mae explain --congestion`` per-channel heatmap.

    ``report`` is a :class:`repro.congestion.model.CongestionReport`.
    Each channel gets a demand bar scaled so a full-capacity channel
    spans the full bar width; demand past capacity renders as ``!``.
    The capacity line always names its source, so a capacity that fell
    back to the model default (instead of coming from the loaded
    process description) is visible in the report.
    """
    distribution = report.distribution
    source = _CAPACITY_SOURCE_LABELS.get(
        report.capacity_source, report.capacity_source
    )
    headers = ("Channel", "Demand", "Crossing", "P(overflow)", "Heat")
    body = []
    for channel in range(distribution.channel_count):
        demand = distribution.demand_means[channel]
        fill = demand / report.capacity
        cells = int(round(fill * _HEAT_WIDTH))
        overflow = min(_HEAT_WIDTH, max(0, cells - _HEAT_WIDTH))
        bar = "#" * min(cells, _HEAT_WIDTH) + "!" * overflow
        body.append(
            (
                channel,
                f"{demand:.2f}",
                f"{distribution.crossing_means[channel]:.2f}",
                f"{distribution.exceedances[channel]:.4f}",
                bar,
            )
        )
    table = render_table(
        headers, body,
        title=f"Per-channel track demand ({distribution.channel_count} "
              f"channels; channel k runs below row k, channel 0 is "
              f"never used)",
    )
    worst = report.worst_channel
    lines = [
        f"congestion report for {report.module_name} "
        f"(n={report.rows} rows, backend={report.backend})",
        "",
        f"channel capacity: {report.capacity} tracks "
        f"(source: {source})",
        "",
        table,
        "",
        f"total demand: {report.total_demand:.3f} tracks, redistributed "
        f"from the module's Eq. 2-3 track total",
        f"worst channel: {worst} "
        f"(P(overflow)={distribution.exceedances[worst]:.4f})",
        f"routability score: P(no channel overflows) = "
        f"{report.routability:.6f}",
    ]
    return "\n".join(lines)


def format_full_custom_explanation(
    explanation: FullCustomExplanation,
) -> str:
    """The ``mae explain`` full-custom report."""
    est = explanation.estimate
    stats = explanation.stats

    headers = ("Net", "D", "A_j (lambda^2)")
    body = [
        (net, components, f"{area:.3f}")
        for net, components, area in explanation.net_areas
    ]
    table = render_table(
        headers, body,
        title="Per-net minimum interconnection areas (Section 4.2; "
              "A_j = 0 nets abut across the channel)",
    )
    area = explanation.reconstructed_area()
    lines = [
        f"full-custom estimate of {stats.module_name} "
        f"({explanation.process_name}, "
        f"device areas: {explanation.config.device_area_mode})",
        "",
        f"Eq. 1    scan: N={stats.device_count} devices, "
        f"H={stats.net_count} signal nets",
        "",
        table,
        "",
        f"Eq. 13   area = device area + sum A_j = "
        f"{est.device_area:.3f} + {est.wire_area:.3f} = "
        f"{area:.3f} lambda^2",
        f"  estimator reports {est.area:.3f} lambda^2 "
        f"(terms match within fp tolerance)",
        f"Sec. 5   dimensions {est.width:.1f} x {est.height:.1f} lambda "
        f"(aspect {est.aspect_ratio:.4f}, port criterion applied)",
    ]
    return "\n".join(lines)
