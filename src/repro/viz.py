"""SVG renderers for placements, layouts, and floorplans.

CAD results are judged with eyes as much as numbers; these writers
turn the package's geometric results into standalone SVG documents so
estimates and oracle layouts can be inspected visually.  Pure string
generation, no dependencies; every renderer returns a complete SVG
document.

Coordinate convention: layout space has y growing *upward*; SVG has y
growing downward, so all renderers flip y around the drawing height.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple
from xml.sax.saxutils import escape

from repro.errors import LayoutError
from repro.floorplan.floorplanner import Floorplan
from repro.layout.full_custom_flow import FullCustomLayout
from repro.layout.placement.row_placer import Placement

#: Fill colours cycled per cell/module (muted, print-friendly).
_PALETTE: Tuple[str, ...] = (
    "#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3",
    "#fdb462", "#b3de69", "#fccde5", "#d9d9d9", "#bc80bd",
)

_FEEDTHROUGH_FILL = "#444444"
_STYLE = (
    "text { font-family: monospace; }"
    " rect { stroke: #333333; stroke-width: 0.5; }"
)


def placement_to_svg(
    placement: Placement,
    row_height: Optional[float] = None,
    scale: float = 2.0,
    label_cells: bool = True,
) -> str:
    """Render a standard-cell placement (rows of cells)."""
    if scale <= 0:
        raise LayoutError(f"scale must be positive, got {scale}")
    row_height = row_height or placement.row_height
    width = placement.width
    height = placement.rows * row_height
    if width <= 0:
        raise LayoutError("placement has no cells to draw")

    body: List[str] = []
    palette = _PaletteCycle()
    for row in range(placement.rows):
        for cell in placement.row_members(row):
            y_layout = row * row_height
            fill = (
                _FEEDTHROUGH_FILL if cell.is_feedthrough
                else palette.colour_for(cell.cell)
            )
            body.append(_rect(
                cell.x, y_layout, cell.width, row_height, height, scale,
                fill, cell.name,
            ))
            if label_cells and not cell.is_feedthrough and (
                cell.width * scale >= 30
            ):
                body.append(_text(
                    cell.x + cell.width / 2, y_layout + row_height / 2,
                    height, scale, cell.name, anchor="middle",
                ))
    return _document(width, height, scale, body,
                     title=f"placement: {placement.module_name}")


def full_custom_to_svg(
    layout: FullCustomLayout,
    scale: float = 3.0,
    label_cells: bool = False,
) -> str:
    """Render a packed full-custom layout (device rectangles)."""
    if scale <= 0:
        raise LayoutError(f"scale must be positive, got {scale}")
    if not layout.device_rects:
        raise LayoutError("layout has no devices to draw")
    width = max(rect.right for rect in layout.device_rects.values())
    height = max(rect.top for rect in layout.device_rects.values())

    body: List[str] = []
    palette = _PaletteCycle()
    for name, rect in layout.device_rects.items():
        kind = name.rstrip("0123456789")
        body.append(_rect(
            rect.x, rect.y, rect.width, rect.height, height, scale,
            palette.colour_for(kind), name,
        ))
        if label_cells and rect.width * scale >= 40:
            body.append(_text(
                rect.center.x, rect.center.y, height, scale, name,
                anchor="middle",
            ))
    return _document(width, height, scale, body,
                     title=f"full-custom: {layout.module_name}")


def floorplan_to_svg(
    plan: Floorplan,
    scale: float = 1.0,
    label_modules: bool = True,
) -> str:
    """Render a chip floorplan (module slots)."""
    if scale <= 0:
        raise LayoutError(f"scale must be positive, got {scale}")
    width = plan.chip.width
    height = plan.chip.height

    body: List[str] = [
        # Chip outline.
        _rect(0.0, 0.0, width, height, height, scale, "#ffffff", "chip"),
    ]
    palette = _PaletteCycle()
    for name, rect in sorted(plan.placements.items()):
        body.append(_rect(
            rect.x, rect.y, rect.width, rect.height, height, scale,
            palette.colour_for(name), name,
        ))
        if label_modules:
            body.append(_text(
                rect.center.x, rect.center.y, height, scale, name,
                anchor="middle",
            ))
    return _document(width, height, scale, body, title="floorplan")


def floorplan_to_text(plan: Floorplan, columns: int = 64) -> str:
    """Render a floorplan as an ASCII grid — the terminal-friendly
    sibling of :func:`floorplan_to_svg` used by the CLI.

    Each module fills its slot with the first letter of its name (the
    legend below the grid disambiguates); ``.`` marks dead space.
    """
    if columns < 8:
        raise LayoutError(f"columns must be >= 8, got {columns}")
    width = plan.chip.width
    height = plan.chip.height
    if width <= 0 or height <= 0:
        raise LayoutError("floorplan has no extent to draw")
    scale = columns / width
    rows = max(1, round(height * scale / 2))  # terminal cells are ~2:1

    grid = [["." for _ in range(columns)] for _ in range(rows)]
    legend = []
    for index, (name, rect) in enumerate(sorted(plan.placements.items())):
        symbol = chr(ord("A") + index % 26)
        legend.append(f"{symbol} = {name}")
        x0 = int(rect.x * scale)
        x1 = max(x0 + 1, int(rect.right * scale))
        # Flip y: layout grows up, the terminal draws down.
        y0 = int((height - rect.top) * scale / 2)
        y1 = max(y0 + 1, int((height - rect.y) * scale / 2))
        for row in range(max(0, y0), min(rows, y1)):
            for col in range(max(0, x0), min(columns, x1)):
                grid[row][col] = symbol

    lines = ["+" + "-" * columns + "+"]
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append("+" + "-" * columns + "+")
    lines.append("; ".join(legend))
    lines.append(
        f"chip {width:.0f} x {height:.0f} lambda, dead space "
        f"{plan.dead_space_fraction:.1%}"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# SVG assembly
# ----------------------------------------------------------------------
class _PaletteCycle:
    """Stable colour per key, cycling the palette."""

    def __init__(self):
        self._assigned: Dict[str, str] = {}

    def colour_for(self, key: str) -> str:
        if key not in self._assigned:
            self._assigned[key] = _PALETTE[len(self._assigned)
                                           % len(_PALETTE)]
        return self._assigned[key]


def _document(
    width: float, height: float, scale: float, body: Iterable[str],
    title: str,
) -> str:
    margin = 4.0
    pixel_width = width * scale + 2 * margin
    pixel_height = height * scale + 2 * margin
    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{pixel_width:.1f}" height="{pixel_height:.1f}" '
        f'viewBox="0 0 {pixel_width:.1f} {pixel_height:.1f}">',
        f"<title>{escape(title)}</title>",
        f"<style>{_STYLE}</style>",
        f'<g transform="translate({margin:.1f},{margin:.1f})">',
    ]
    lines.extend(body)
    lines.append("</g>")
    lines.append("</svg>")
    return "\n".join(lines) + "\n"


def _rect(
    x: float, y_layout: float, width: float, height: float,
    drawing_height: float, scale: float, fill: str, name: str,
) -> str:
    y_svg = (drawing_height - y_layout - height) * scale
    return (
        f'<rect x="{x * scale:.2f}" y="{y_svg:.2f}" '
        f'width="{width * scale:.2f}" height="{height * scale:.2f}" '
        f'fill="{fill}"><title>{escape(name)}</title></rect>'
    )


def _text(
    x: float, y_layout: float, drawing_height: float, scale: float,
    text: str, anchor: str = "start",
) -> str:
    y_svg = (drawing_height - y_layout) * scale
    return (
        f'<text x="{x * scale:.2f}" y="{y_svg:.2f}" '
        f'font-size="8" text-anchor="{anchor}">{escape(text)}</text>'
    )
