"""Fabrication-process databases.

The estimator's second input (Fig. 1) is "the fabrication technique or
process data base for the particular technology used to fabricate the
chip ... the areas of different types of devices, the height of the
Standard-Cell rows, and the value of lambda, the maximum allowable mask
misalignment".

* :mod:`repro.technology.process` — :class:`ProcessDatabase` and
  :class:`DeviceType`.
* :mod:`repro.technology.libraries` — the two shipped databases: an nMOS
  Mead-Conway process (lambda = 2.5 um, matching the paper's Table 1
  experiments) and a CMOS process, each with a standard-cell library and
  transistor device types.
* :mod:`repro.technology.loader` — JSON persistence, so "multiple
  process data bases can be stored in the computer system".
"""

from repro.technology.libraries import cmos_process, nmos_process
from repro.technology.loader import (
    load_process,
    load_process_file,
    process_to_dict,
    save_process_file,
)
from repro.technology.process import DeviceKind, DeviceType, ProcessDatabase

__all__ = [
    "DeviceKind",
    "DeviceType",
    "ProcessDatabase",
    "cmos_process",
    "load_process",
    "load_process_file",
    "nmos_process",
    "process_to_dict",
    "save_process_file",
]
