"""Shipped process databases.

Two processes, mirroring the paper's experiments:

* :func:`nmos_process` — an nMOS Mead-Conway process with
  lambda = 2.5 um, the technology of the paper's Table 1 comparisons
  against Newkirk & Mathews' full-custom layouts and of the Rutgers
  NMOS standard-cell library used for Table 2.
* :func:`cmos_process` — a 2 um (lambda = 1.0 um) CMOS process,
  exercising the claim that "the estimator deals with different chip
  fabrication technologies (e.g., CMOS and nMOS)".

Cell geometry follows Mead-Conway-style scalable rules: minimum metal
pitch of 7 lambda sets the routing-track pitch, cells share a fixed row
height, and widths grow with gate fan-in.  The absolute values are
representative rather than copied from the (unavailable) Rutgers
library; EXPERIMENTS.md discusses the substitution.
"""

from __future__ import annotations

from repro.technology.process import DeviceKind, DeviceType, ProcessDatabase

#: Gate cell widths (lambda) for the nMOS library, keyed by cell name.
_NMOS_GATES = {
    "INV": (8.0, 2),
    "BUF": (12.0, 2),
    "NAND2": (12.0, 3),
    "NAND3": (16.0, 4),
    "NAND4": (20.0, 5),
    "NOR2": (12.0, 3),
    "NOR3": (16.0, 4),
    "AND2": (16.0, 3),
    "OR2": (16.0, 3),
    "XOR2": (24.0, 3),
    "XNOR2": (24.0, 3),
    "AOI21": (18.0, 4),
    "AOI22": (22.0, 5),
    "OAI21": (18.0, 4),
    "MUX2": (26.0, 5),
    "DLATCH": (30.0, 4),
    "DFF": (44.0, 4),
    "DFFR": (50.0, 5),
    "HADD": (30.0, 4),
    "FADD": (54.0, 5),
}

#: CMOS gates are wider (complementary pairs) on a taller row.
_CMOS_GATES = {
    "INV": (10.0, 2),
    "BUF": (16.0, 2),
    "NAND2": (16.0, 3),
    "NAND3": (22.0, 4),
    "NAND4": (28.0, 5),
    "NOR2": (16.0, 3),
    "NOR3": (22.0, 4),
    "AND2": (20.0, 3),
    "OR2": (20.0, 3),
    "XOR2": (30.0, 3),
    "XNOR2": (30.0, 3),
    "AOI21": (24.0, 4),
    "AOI22": (28.0, 5),
    "OAI21": (24.0, 4),
    "MUX2": (34.0, 5),
    "DLATCH": (40.0, 4),
    "DFF": (56.0, 4),
    "DFFR": (64.0, 5),
    "HADD": (38.0, 4),
    "FADD": (68.0, 5),
}


def nmos_process() -> ProcessDatabase:
    """The nMOS Mead-Conway process (lambda = 2.5 um) of the paper."""
    process = ProcessDatabase(
        name="nmos-mead-conway-2.5um",
        lambda_um=2.5,
        row_height=40.0,
        feedthrough_width=7.0,
        track_pitch=7.0,
        port_pitch=8.0,
        # Routing budget per channel: a conservative manual-era figure
        # (single metal layer; a channel much taller than ~2 row
        # heights of tracks signals a placement problem).
        channel_capacity=16,
        description=(
            "nMOS, Mead-Conway scalable rules, lambda = 2.5 um; matches "
            "the technology of the paper's Table 1 experiments"
        ),
    )
    for name, (width, pins) in _NMOS_GATES.items():
        process.register(
            DeviceType(name, width, process.row_height, DeviceKind.GATE, pins)
        )
    process.register_all(
        [
            # Full-custom primitives: enhancement pull-down, depletion
            # pull-up (the nMOS inverter pair), and a pass transistor.
            # All share one height — "individual transistor layouts are
            # used as Standard-Cells" (paper, Section 4.2) — so manual
            # row packing wastes no vertical space.
            DeviceType("nmos_enh", 7.0, 9.0, DeviceKind.TRANSISTOR, 3,
                       "enhancement-mode pull-down"),
            DeviceType("nmos_dep", 10.0, 9.0, DeviceKind.TRANSISTOR, 3,
                       "depletion-mode pull-up (load), laid sideways"),
            DeviceType("nmos_pass", 7.0, 9.0, DeviceKind.TRANSISTOR, 3,
                       "pass transistor"),
            DeviceType("res", 4.0, 12.0, DeviceKind.PASSIVE, 2,
                       "diffusion resistor"),
            DeviceType("cap", 10.0, 10.0, DeviceKind.PASSIVE, 2,
                       "gate capacitor"),
        ]
    )
    return process.validate()


def cmos_process() -> ProcessDatabase:
    """A 2 um CMOS process (lambda = 1.0 um)."""
    process = ProcessDatabase(
        name="cmos-2um",
        lambda_um=1.0,
        row_height=50.0,
        feedthrough_width=8.0,
        track_pitch=8.0,
        port_pitch=8.0,
        # Two routing layers buy a deeper per-channel track budget
        # than the single-metal nMOS process.
        channel_capacity=24,
        description="CMOS, lambda = 1.0 um (2 um drawn gate length)",
    )
    for name, (width, pins) in _CMOS_GATES.items():
        process.register(
            DeviceType(name, width, process.row_height, DeviceKind.GATE, pins)
        )
    process.register_all(
        [
            DeviceType("nmos", 8.0, 10.0, DeviceKind.TRANSISTOR, 4,
                       "n-channel MOSFET"),
            DeviceType("pmos", 12.0, 10.0, DeviceKind.TRANSISTOR, 4,
                       "p-channel MOSFET (wider for mobility match)"),
            DeviceType("res", 4.0, 14.0, DeviceKind.PASSIVE, 2,
                       "poly resistor"),
            DeviceType("cap", 12.0, 12.0, DeviceKind.PASSIVE, 2,
                       "poly-poly capacitor"),
        ]
    )
    return process.validate()


def builtin_processes() -> dict:
    """Name -> factory for every shipped process."""
    return {
        "nmos": nmos_process,
        "cmos": cmos_process,
    }
