"""JSON persistence for process databases.

"Multiple process data bases can be stored in the computer system to
describe various VLSI technologies" — this module is that store: a
process serialises to a single JSON document that survives a round trip
exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.errors import TechnologyError
from repro.technology.process import DeviceKind, DeviceType, ProcessDatabase

_FORMAT_VERSION = 1


def process_to_dict(process: ProcessDatabase) -> Dict[str, Any]:
    """Serialise a process database to plain JSON-compatible data."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": process.name,
        "lambda_um": process.lambda_um,
        "row_height": process.row_height,
        "feedthrough_width": process.feedthrough_width,
        "track_pitch": process.track_pitch,
        "port_pitch": process.port_pitch,
        "description": process.description,
        "device_types": [
            {
                "name": dt.name,
                "width": dt.width,
                "height": dt.height,
                "kind": dt.kind.value,
                "pin_count": dt.pin_count,
                "description": dt.description,
            }
            for dt in process.device_types
        ],
    }


def load_process(data: Dict[str, Any]) -> ProcessDatabase:
    """Deserialise a process database from :func:`process_to_dict` data."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise TechnologyError(
            f"unsupported process format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    try:
        process = ProcessDatabase(
            name=data["name"],
            lambda_um=float(data["lambda_um"]),
            row_height=float(data["row_height"]),
            feedthrough_width=float(data["feedthrough_width"]),
            track_pitch=float(data["track_pitch"]),
            port_pitch=float(data.get("port_pitch", 8.0)),
            description=data.get("description", ""),
        )
        for entry in data.get("device_types", []):
            process.register(
                DeviceType(
                    name=entry["name"],
                    width=float(entry["width"]),
                    height=float(entry["height"]),
                    kind=DeviceKind(entry.get("kind", "gate")),
                    pin_count=int(entry.get("pin_count", 2)),
                    description=entry.get("description", ""),
                )
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise TechnologyError(f"malformed process database: {exc}") from exc
    return process


def save_process_file(process: ProcessDatabase,
                      path: Union[str, Path]) -> Path:
    """Write a process database to a JSON file."""
    path = Path(path)
    path.write_text(json.dumps(process_to_dict(process), indent=2) + "\n")
    return path


def load_process_file(path: Union[str, Path]) -> ProcessDatabase:
    """Read a process database from a JSON file."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise TechnologyError(f"cannot read process file {path}: {exc}") from exc
    return load_process(data)
