"""Process database: device geometry and layout design parameters.

All dimensions are in lambda (see :mod:`repro.units`); the database
records the physical lambda value so reports can convert.  One database
fully parameterises both estimators:

* per-device-type width/height (the paper's W_i, and device areas),
* ``row_height`` — the fixed standard-cell row height,
* ``feedthrough_width`` — width a feed-through cell adds to a row,
* ``track_pitch`` — centre-to-centre spacing of routing tracks in a
  channel (wire width + spacing),
* ``port_pitch`` — edge length one module port consumes, used by the
  aspect-ratio control criterion,
* ``channel_capacity`` — how many tracks one routing channel can hold
  before it is considered congested (the technology's routing budget,
  consumed by :mod:`repro.congestion`); ``None`` means the process
  does not state one and callers fall back to the model default.

"The estimator deals with different chip fabrication technologies ...
and can easily be adjusted to cope with new chip fabrication processes"
— adjusting means building another :class:`ProcessDatabase`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Optional, Tuple

from repro.errors import TechnologyError
from repro.netlist.model import Device


class DeviceKind(enum.Enum):
    """Broad device classes; layout flows treat them differently."""

    GATE = "gate"            # standard cell (logic gate, flip-flop, ...)
    TRANSISTOR = "transistor"  # full-custom primitive
    PASSIVE = "passive"      # resistor / capacitor


@dataclass(frozen=True)
class DeviceType:
    """Geometry of one device type.

    ``width`` and ``height`` are in lambda.  For GATE kinds, ``height``
    should equal the process row height (the standard-cell contract);
    :meth:`ProcessDatabase.validate` enforces it.
    """

    name: str
    width: float
    height: float
    kind: DeviceKind = DeviceKind.GATE
    pin_count: int = 2
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise TechnologyError("device type name must be non-empty")
        if self.width <= 0 or self.height <= 0:
            raise TechnologyError(
                f"device type {self.name!r}: dimensions must be positive, "
                f"got {self.width} x {self.height}"
            )
        if self.pin_count < 1:
            raise TechnologyError(
                f"device type {self.name!r}: pin_count must be >= 1"
            )

    @property
    def area(self) -> float:
        """Footprint in lambda^2."""
        return self.width * self.height


@dataclass
class ProcessDatabase:
    """A complete fabrication-process description."""

    name: str
    lambda_um: float
    row_height: float
    feedthrough_width: float
    track_pitch: float
    port_pitch: float = 8.0
    channel_capacity: Optional[int] = None
    description: str = ""
    _types: Dict[str, DeviceType] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise TechnologyError("process name must be non-empty")
        for label, value in (
            ("lambda_um", self.lambda_um),
            ("row_height", self.row_height),
            ("feedthrough_width", self.feedthrough_width),
            ("track_pitch", self.track_pitch),
            ("port_pitch", self.port_pitch),
        ):
            if value <= 0:
                raise TechnologyError(
                    f"process {self.name!r}: {label} must be positive, "
                    f"got {value}"
                )
        if self.channel_capacity is not None and self.channel_capacity < 1:
            raise TechnologyError(
                f"process {self.name!r}: channel_capacity must be >= 1, "
                f"got {self.channel_capacity}"
            )

    # ------------------------------------------------------------------
    # device types
    # ------------------------------------------------------------------
    def register(self, device_type: DeviceType) -> DeviceType:
        """Add a device type; duplicate names are an error."""
        if device_type.name in self._types:
            raise TechnologyError(
                f"process {self.name!r}: duplicate device type "
                f"{device_type.name!r}"
            )
        self._types[device_type.name] = device_type
        return device_type

    def register_all(self, device_types: Iterable[DeviceType]) -> None:
        for device_type in device_types:
            self.register(device_type)

    def has_type(self, cell: str) -> bool:
        return cell in self._types

    def device_type(self, cell: str) -> DeviceType:
        try:
            return self._types[cell]
        except KeyError:
            known = ", ".join(sorted(self._types)) or "<none>"
            raise TechnologyError(
                f"process {self.name!r}: unknown device type {cell!r} "
                f"(known: {known})"
            ) from None

    @property
    def device_types(self) -> Tuple[DeviceType, ...]:
        return tuple(self._types.values())

    # ------------------------------------------------------------------
    # geometry resolution (the resolver callables used by the scanner)
    # ------------------------------------------------------------------
    def device_width(self, device: Device) -> float:
        """Width in lambda of a device instance (override-aware)."""
        if device.width_lambda is not None:
            return device.width_lambda
        return self.device_type(device.cell).width

    def device_height(self, device: Device) -> float:
        """Height in lambda of a device instance (override-aware)."""
        if device.height_lambda is not None:
            return device.height_lambda
        return self.device_type(device.cell).height

    def device_area(self, device: Device) -> float:
        return self.device_width(device) * self.device_height(device)

    def device_kind(self, device: Device) -> DeviceKind:
        return self.device_type(device.cell).kind

    # ------------------------------------------------------------------
    # consistency
    # ------------------------------------------------------------------
    def validate(self) -> "ProcessDatabase":
        """Check the standard-cell contract: all GATE heights == row height."""
        for device_type in self._types.values():
            if device_type.kind is DeviceKind.GATE and not _close(
                device_type.height, self.row_height
            ):
                raise TechnologyError(
                    f"process {self.name!r}: gate {device_type.name!r} height "
                    f"{device_type.height} != row height {self.row_height}"
                )
        return self

    def scaled(self, name: str, factor: float) -> "ProcessDatabase":
        """Derive a process with all lambda dimensions scaled by ``factor``.

        Useful for what-if studies ("how big would this module be in a
        half-shrunk process"); lambda_um is divided by the same factor so
        physical areas shrink quadratically.
        """
        if factor <= 0:
            raise TechnologyError(f"scale factor must be positive, got {factor}")
        derived = ProcessDatabase(
            name=name,
            lambda_um=self.lambda_um / factor,
            row_height=self.row_height,
            feedthrough_width=self.feedthrough_width,
            track_pitch=self.track_pitch,
            port_pitch=self.port_pitch,
            channel_capacity=self.channel_capacity,
            description=f"{self.description} (scaled x{factor})".strip(),
        )
        for device_type in self._types.values():
            derived.register(replace(device_type))
        return derived

    def __repr__(self) -> str:
        return (
            f"ProcessDatabase({self.name!r}, lambda={self.lambda_um}um, "
            f"{len(self._types)} device types)"
        )


def _close(a: float, b: float, tolerance: float = 1e-9) -> bool:
    return abs(a - b) <= tolerance * max(1.0, abs(a), abs(b))
