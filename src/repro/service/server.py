"""``mae serve``: the stdlib HTTP+JSON front of the engine facade.

One :class:`MAEServer` wraps one :class:`~repro.service.engine
.EstimationEngine` behind ``http.server.ThreadingHTTPServer`` — no
third-party dependency, matching the package's zero-dependency runtime.
Handler threads do only cheap work (JSON codec, netlist parsing, edit
application under the session lock); every shared-cache estimate
evaluation rides the engine's single dispatcher thread, preserving the
concurrency invariant documented in ``docs/ARCHITECTURE.md``.

The route table below is the server's public contract;
``docs/SERVICE.md`` documents each endpoint with examples and
``tests/test_docs_consistency.py`` keeps the two in lockstep.

Status mapping (see :mod:`repro.errors`):

* 400 — malformed JSON, unparseable netlist, bad config/edits
* 404 — unknown route or unknown session
* 409 — session limit reached
* 429 — backpressure: the bounded request queue (or the in-flight
  request limiter) is full; retry with backoff
* 503 — the engine is draining for shutdown
* 504 — the per-request timeout expired before dispatch
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.core.config import EstimatorConfig
from repro.errors import (
    EstimationError,
    MutationError,
    NetlistError,
    QueueFullError,
    ReproError,
    RequestTimeoutError,
    ServiceClosedError,
    ServiceError,
    SessionError,
    TechnologyError,
)
from repro.incremental.mutations import mutations_from_jsonable
from repro.netlist import parse_spice, parse_verilog
from repro.obs.metrics import LatencyTracker
from repro.service.engine import EstimationEngine, ServiceConfig
from repro.service.wire import estimate_to_jsonable
from repro.technology.libraries import builtin_processes

#: The public endpoint contract: (method, path template, summary).
#: ``docs/SERVICE.md`` must list exactly these —
#: ``tests/test_docs_consistency.py`` enforces it.
ROUTES: Tuple[Tuple[str, str, str], ...] = (
    ("GET", "/health", "liveness probe"),
    ("GET", "/metrics", "repro.obs snapshot plus service/server sections"),
    ("POST", "/sessions", "create a session from a netlist source"),
    ("GET", "/sessions", "list open sessions"),
    ("GET", "/sessions/{id}", "describe one session"),
    ("DELETE", "/sessions/{id}", "close a session"),
    ("POST", "/sessions/{id}/estimate", "estimate the live module"),
    ("POST", "/sessions/{id}/edits", "apply ECO edits and re-estimate"),
    ("POST", "/estimate", "sessionless batch estimate"),
    ("POST", "/shutdown", "drain in-flight work and stop"),
)

#: EstimatorConfig fields settable over the wire (``config`` objects in
#: session-create and batch-estimate bodies).  ``power_nets`` arrives
#: as a JSON list and is tupled; everything else passes through to the
#: frozen dataclass, whose own validation rejects bad values.
CONFIG_FIELDS = (
    "rows", "max_rows", "row_spread_mode", "feedthrough_model",
    "track_sharing_factor", "track_model", "congestion_margin",
    "net_span_mode", "device_area_mode", "port_pitch_override",
    "power_nets", "max_aspect",
)

_PARSERS = {"verilog": parse_verilog, "spice": parse_spice}


class _HTTPServer(ThreadingHTTPServer):
    """Threaded server tuned for connection-per-request clients: a
    deep accept backlog absorbs the simultaneous-connect storm of many
    sessions (the stdlib default of 5 drops connections at ~20+
    concurrent clients), and daemon handler threads never block
    interpreter exit."""

    daemon_threads = True
    request_queue_size = 256


class _HTTPFail(Exception):
    """Internal: unwind a handler with a specific status + message."""

    def __init__(self, status: int, message: str):
        self.status = status
        self.message = message
        super().__init__(message)


def config_from_jsonable(payload: object) -> EstimatorConfig:
    """Build an :class:`EstimatorConfig` from a request's ``config``
    object, rejecting unknown fields loudly (400)."""
    if payload is None:
        return EstimatorConfig()
    if not isinstance(payload, dict):
        raise _HTTPFail(400, "'config' must be a JSON object")
    unknown = set(payload) - set(CONFIG_FIELDS)
    if unknown:
        raise _HTTPFail(
            400, f"unknown config fields {sorted(unknown)} "
                 f"(settable: {', '.join(CONFIG_FIELDS)})"
        )
    fields = dict(payload)
    if "power_nets" in fields:
        nets = fields["power_nets"]
        if not isinstance(nets, list) or not all(
            isinstance(net, str) for net in nets
        ):
            raise _HTTPFail(400, "'power_nets' must be a list of strings")
        fields["power_nets"] = tuple(nets)
    try:
        return EstimatorConfig(**fields)
    except (EstimationError, TypeError) as exc:
        raise _HTTPFail(400, f"invalid config: {exc}") from exc


def _parse_module(body: dict, field_prefix: str = ""):
    """Parse the ``source``/``format`` pair of a request body."""
    source = body.get("source")
    if not isinstance(source, str) or not source.strip():
        raise _HTTPFail(
            400, f"'{field_prefix}source' must be a non-empty string"
        )
    fmt = body.get("format", "verilog")
    parser = _PARSERS.get(fmt)
    if parser is None:
        raise _HTTPFail(
            400, f"unknown format {fmt!r} (supported: verilog, spice)"
        )
    return parser(source)


def _rows_spec(body: dict):
    """Normalize the ``rows`` field: null, int, or list of ints."""
    rows = body.get("rows")
    if rows is None or isinstance(rows, int) and not isinstance(rows, bool):
        return rows
    if isinstance(rows, list) and rows and all(
        isinstance(r, int) and not isinstance(r, bool) for r in rows
    ):
        return tuple(rows)
    raise _HTTPFail(
        400, "'rows' must be null, an integer, or a non-empty "
             "list of integers"
    )


class MAEServer:
    """One HTTP server bound to one engine.

    ``port=0`` binds an ephemeral port (tests, load tests); the bound
    address is available as :attr:`base_url` after construction.
    ``max_inflight`` bounds concurrently *handled* requests across all
    endpoints — the second backpressure layer in front of the engine's
    bounded queue (both answer 429).
    """

    def __init__(
        self,
        engine: Optional[EstimationEngine] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 128,
    ) -> None:
        if max_inflight < 1:
            raise ServiceError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self.engine = engine or EstimationEngine(ServiceConfig())
        #: One shared process database per tech name: sessions of the
        #: same technology share one instance, which keys them onto the
        #: same plans and lets multi-session drains batch together.
        self.processes = {
            name: factory() for name, factory in builtin_processes().items()
        }
        self.latency: Dict[str, LatencyTracker] = {}
        self._counts: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._inflight = threading.Semaphore(max_inflight)
        self._thread: Optional[threading.Thread] = None
        self._stopped = False
        self._done = threading.Event()
        handler = _make_handler(self)
        self._httpd = _HTTPServer((host, port), handler)
        self.host, self.port = self._httpd.server_address[:2]

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def stopped(self) -> bool:
        """True once :meth:`stop` has completed its drain."""
        return self._done.is_set()

    # ------------------------------------------------------------------
    def start(self) -> "MAEServer":
        """Serve on a background thread (tests, load tests)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="mae-serve", daemon=True,
        )
        self._thread.start()
        return self

    def run_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` (or
        Ctrl-C in the CLI handler) — the ``mae serve`` foreground."""
        try:
            self._httpd.serve_forever()
        finally:
            self.stop()

    def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: stop accepting connections, drain the
        engine (serving every queued request), persist caches."""
        if self._stopped:
            return
        self._stopped = True
        self._httpd.shutdown()
        self._httpd.server_close()
        self.engine.shutdown(drain=drain)
        if self._thread is not None and self._thread is not (
            threading.current_thread()
        ):
            self._thread.join(timeout=10.0)
        self._done.set()

    # ------------------------------------------------------------------
    def observe(self, endpoint: str, seconds: float, status: int) -> None:
        with self._lock:
            tracker = self.latency.get(endpoint)
            if tracker is None:
                tracker = self.latency[endpoint] = LatencyTracker()
            key = f"{endpoint}:{status}"
            self._counts[key] = self._counts.get(key, 0) + 1
        tracker.observe(seconds)

    def server_stats(self) -> dict:
        with self._lock:
            counts = dict(sorted(self._counts.items()))
            latency = {
                endpoint: tracker.summary()
                for endpoint, tracker in sorted(self.latency.items())
            }
        return {"responses": counts, "latency": latency}


def _make_handler(server: MAEServer):
    """The request-handler class, closed over its :class:`MAEServer`."""

    class Handler(BaseHTTPRequestHandler):
        server_version = "mae-serve/1"
        protocol_version = "HTTP/1.1"

        # silence per-request stderr logging; metrics carry the signal
        def log_message(self, format, *args):  # noqa: A002
            pass

        def do_GET(self) -> None:
            self._route("GET")

        def do_POST(self) -> None:
            self._route("POST")

        def do_DELETE(self) -> None:
            self._route("DELETE")

        # --------------------------------------------------------------
        def _route(self, method: str) -> None:
            start = time.perf_counter()
            endpoint = "unmatched"
            status = 500
            if not server._inflight.acquire(blocking=False):
                self._reply(429, {"error": "server is at its in-flight "
                                           "request limit; retry"})
                server.observe("inflight-limit", 0.0, 429)
                return
            try:
                # Resolve the route before running its handler so error
                # responses are attributed to the endpoint they hit, not
                # lumped under "unmatched".
                endpoint, status, thunk = self._dispatch(method)
                self._reply(status, thunk())
            except _HTTPFail as exc:
                status = exc.status
                self._reply(exc.status, {"error": exc.message})
            except ReproError as exc:
                status, payload = _map_error(exc)
                self._reply(status, payload)
            except Exception as exc:  # never kill the handler thread
                status = 500
                self._reply(500, {"error": f"internal error: {exc}"})
            finally:
                server._inflight.release()
                server.observe(
                    endpoint, time.perf_counter() - start, status
                )

        def _dispatch(self, method: str) -> Tuple[str, int, object]:
            parts = [p for p in self.path.split("?")[0].split("/") if p]
            if parts == ["health"]:
                self._require(method, "GET", "/health")
                return "GET /health", 200, lambda: {
                    "status": "ok",
                    "accepting": server.engine.service_stats()["accepting"],
                }
            if parts == ["metrics"]:
                self._require(method, "GET", "/metrics")
                return "GET /metrics", 200, self._metrics
            if parts == ["sessions"]:
                if method == "POST":
                    return "POST /sessions", 201, self._create_session
                self._require(method, "GET", "/sessions")
                return "GET /sessions", 200, lambda: {
                    "sessions": server.engine.list_sessions()
                }
            if len(parts) == 2 and parts[0] == "sessions":
                session_id = parts[1]
                if method == "GET":
                    return "GET /sessions/{id}", 200, lambda: (
                        server.engine.session(session_id).info()
                    )
                self._require(method, "DELETE", "/sessions/{id}")
                return "DELETE /sessions/{id}", 200, lambda: {
                    "closed": server.engine.close_session(session_id)
                }
            if len(parts) == 3 and parts[0] == "sessions":
                session_id, action = parts[1], parts[2]
                if action == "estimate":
                    self._require(method, "POST",
                                  "/sessions/{id}/estimate")
                    return ("POST /sessions/{id}/estimate", 200,
                            lambda: self._estimate(session_id))
                if action == "edits":
                    self._require(method, "POST", "/sessions/{id}/edits")
                    return ("POST /sessions/{id}/edits", 200,
                            lambda: self._edits(session_id))
            if parts == ["estimate"]:
                self._require(method, "POST", "/estimate")
                return "POST /estimate", 200, self._batch_estimate
            if parts == ["shutdown"]:
                self._require(method, "POST", "/shutdown")
                return "POST /shutdown", 202, self._shutdown
            raise _HTTPFail(404, f"no route for {method} {self.path}")

        @staticmethod
        def _metrics() -> dict:
            payload = server.engine.metrics()
            payload["server"] = server.server_stats()
            return payload

        @staticmethod
        def _shutdown() -> dict:
            threading.Thread(
                target=server.stop, kwargs={"drain": True},
                name="mae-serve-shutdown", daemon=True,
            ).start()
            return {"status": "draining"}

        @staticmethod
        def _require(method: str, expected: str, route: str) -> None:
            if method != expected:
                raise _HTTPFail(
                    405, f"{route} only supports {expected}"
                )

        # --------------------------------------------------------------
        def _create_session(self) -> dict:
            body = self._json_body()
            module = _parse_module(body)
            tech = body.get("tech", "nmos")
            process = server.processes.get(tech)
            if process is None:
                raise _HTTPFail(
                    400, f"unknown tech {tech!r} "
                         f"(available: {sorted(server.processes)})"
                )
            config = config_from_jsonable(body.get("config"))
            backend = body.get("backend")
            if backend is not None and not isinstance(backend, str):
                raise _HTTPFail(400, "'backend' must be a string")
            name = body.get("name")
            if name is not None and not isinstance(name, str):
                raise _HTTPFail(400, "'name' must be a string")
            session = server.engine.create_session(
                module, process, config, name=name, backend=backend,
            )
            return session.info()

        def _estimate(self, session_id: str) -> dict:
            body = self._json_body(optional=True)
            rows = _rows_spec(body)
            version, result = server.engine.estimate(
                session_id, rows, timeout=_timeout(body)
            )
            return _estimate_payload(session_id, version, rows, result)

        def _edits(self, session_id: str) -> dict:
            body = self._json_body()
            document = body.get("edits")
            if document is None:
                raise _HTTPFail(
                    400, "'edits' must hold a mutations document "
                         "(the mae eco edits-file format)"
                )
            mutations = mutations_from_jsonable(document)
            rows = _rows_spec(body)
            want_estimate = body.get("estimate", True)
            if not isinstance(want_estimate, bool):
                raise _HTTPFail(400, "'estimate' must be a boolean")
            version, result = server.engine.apply_edits(
                session_id, mutations, rows,
                estimate=want_estimate, timeout=_timeout(body),
            )
            payload = {"applied": len(mutations)}
            if want_estimate:
                payload.update(
                    _estimate_payload(session_id, version, rows, result)
                )
            else:
                payload.update({"session": session_id, "version": version})
            return payload

        def _batch_estimate(self) -> dict:
            body = self._json_body()
            specs = body.get("modules")
            if not isinstance(specs, list) or not specs:
                raise _HTTPFail(
                    400, "'modules' must be a non-empty list of "
                         "{source, format} objects"
                )
            modules = []
            for index, spec in enumerate(specs):
                if not isinstance(spec, dict):
                    raise _HTTPFail(
                        400, f"modules[{index}] must be an object"
                    )
                modules.append(_parse_module(spec))
            tech = body.get("tech", "nmos")
            process = server.processes.get(tech)
            if process is None:
                raise _HTTPFail(
                    400, f"unknown tech {tech!r} "
                         f"(available: {sorted(server.processes)})"
                )
            methodology = body.get("methodology", "standard-cell")
            if methodology not in ("standard-cell", "full-custom"):
                raise _HTTPFail(
                    400, "'methodology' must be 'standard-cell' or "
                         "'full-custom'"
                )
            config = config_from_jsonable(body.get("config"))
            rows = _rows_spec(body)
            row_list = (
                list(rows) if isinstance(rows, tuple) else [rows]
            )
            configs = [
                config if r is None else config.with_rows(r)
                for r in row_list
            ]

            def job():
                from repro.perf.batch import estimate_batch

                return estimate_batch(
                    modules, process, configs,
                    methodologies=(methodology,),
                    jobs=server.engine.config.jobs,
                )

            results = server.engine.submit_job(job, timeout=_timeout(body))
            return {
                "count": len(results),
                "estimates": [
                    {
                        "module": result.task.module_name,
                        "methodology": result.task.methodology,
                        "estimate": estimate_to_jsonable(result.estimate),
                    }
                    for result in results
                ],
            }

        # --------------------------------------------------------------
        def _json_body(self, optional: bool = False) -> dict:
            length = int(self.headers.get("Content-Length") or 0)
            if length == 0:
                if optional:
                    return {}
                raise _HTTPFail(400, "request body must be JSON")
            raw = self.rfile.read(length)
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise _HTTPFail(
                    400, f"request body is not valid JSON: {exc}"
                ) from exc
            if not isinstance(body, dict):
                raise _HTTPFail(400, "request body must be a JSON object")
            return body

        def _reply(self, status: int, payload: dict) -> None:
            data = json.dumps(payload).encode("utf-8")
            try:
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away; nothing to salvage

    return Handler


def _timeout(body: dict) -> Optional[float]:
    timeout = body.get("timeout")
    if timeout is None:
        return None
    if not isinstance(timeout, (int, float)) or isinstance(timeout, bool) \
            or timeout <= 0:
        raise _HTTPFail(400, "'timeout' must be a positive number")
    return float(timeout)


def _estimate_payload(session_id, version, rows, result) -> dict:
    payload = {"session": session_id, "version": version}
    if isinstance(result, tuple):
        payload["estimates"] = [
            estimate_to_jsonable(estimate) for estimate in result
        ]
    else:
        payload["estimate"] = estimate_to_jsonable(result)
    return payload


def _map_error(exc: ReproError) -> Tuple[int, dict]:
    """ReproError subclass -> (status, body); the service contract."""
    if isinstance(exc, QueueFullError):
        return 429, {"error": str(exc)}
    if isinstance(exc, RequestTimeoutError):
        return 504, {"error": str(exc)}
    if isinstance(exc, ServiceClosedError):
        return 503, {"error": str(exc)}
    if isinstance(exc, SessionError):
        status = 409 if "limit" in str(exc) else 404
        return status, {"error": str(exc)}
    if isinstance(exc, (NetlistError, MutationError, EstimationError,
                        TechnologyError)):
        return 400, {"error": str(exc)}
    return 500, {"error": str(exc)}


def start_server(
    engine: Optional[EstimationEngine] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    max_inflight: int = 128,
) -> MAEServer:
    """Build and start a server on a background thread; returns it with
    :attr:`~MAEServer.base_url` ready.  The one-liner for tests, the
    load generator, and embedders."""
    return MAEServer(engine, host, port, max_inflight).start()
