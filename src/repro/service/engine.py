"""The estimation-engine facade: sessions, coalescing queue, lifecycle.

:class:`EstimationEngine` is the reusable core behind ``mae serve`` —
the piece a CAD-flow embedder uses directly when it wants multi-tenant
estimation without HTTP.  It owns three things:

**Sessions.**  Each :class:`Session` wraps a live
:class:`~repro.incremental.IncrementalEstimator`: the client streams
ECO edits into it (O(affected nets) bookkeeping, revision-stamped) and
estimates are served from the maintained statistics through the shared
plan cache.  Per-session state is guarded by a per-session lock; edits
never block other sessions.

**The coalescing request queue.**  Estimate requests from any number of
client threads enter one bounded queue (full -> :class:`QueueFullError`,
the HTTP 429 backpressure signal) and are drained by a **single
dispatcher thread**.  Each drain takes every queued request (up to
``coalesce_limit``), groups them by session, and serves each group with
*one* planning call — multi-row groups go through
:meth:`~repro.incremental.IncrementalEstimator.estimate_rows`, a single
batched kernel evaluation under the numpy backend.  When the engine is
configured with ``jobs > 1`` and a drain holds requests for several
sessions of the same process/backend, the whole group is fanned out as
one :func:`repro.perf.batch.estimate_batch` job instead.  Every route
is bit-identical to a direct
:func:`~repro.core.standard_cell.estimate_standard_cell_from_stats`
call — the ``serve_equivalence`` verify gate enforces it.

**The shared cache lifecycle.**  All sessions share one process-wide
kernel-cache / Stirling-triangle / plan-cache instance.  The
concurrency invariant that makes this safe without fine-grained locks:
*only the dispatcher thread evaluates estimates*, so only the
dispatcher (and pool workers warm-started from it) ever touches the
shared memo dicts.  Client threads touch per-session state under the
session lock and read-only snapshots.  ``kernel_cache`` wires the
engine into :func:`repro.perf.diskcache.persistent_kernel_caches`:
warm-start on construction, save on a clean :meth:`shutdown`.

Shutdown is graceful by default: the engine stops accepting work
(:class:`ServiceClosedError`, HTTP 503), drains every queued request,
then joins the dispatcher and persists the caches.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import EstimatorConfig
from repro.core.results import StandardCellEstimate
from repro.errors import (
    QueueFullError,
    RequestTimeoutError,
    ServiceClosedError,
    ServiceError,
    SessionError,
)
from repro.incremental.engine import IncrementalEstimator
from repro.incremental.mutations import Mutation
from repro.netlist.model import Module
from repro.obs.metrics import LatencyTracker, get_registry
from repro.technology.process import ProcessDatabase

#: Row selector for one estimate request: ``None`` (the session
#: config's row policy), one row count, or several row counts.
RowsSpec = Union[None, int, Sequence[int]]


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one :class:`EstimationEngine`.

    ``queue_limit`` bounds the number of *queued* estimate requests
    across all sessions — the backpressure point.  ``coalesce_limit``
    caps how many of them one dispatcher drain serves together.
    ``jobs > 1`` lets a multi-session drain fan out through the
    ``estimate_batch`` process pool.  ``request_timeout`` is the
    default seconds a caller waits for its coalesced result before the
    request is abandoned (HTTP 504).
    """

    max_sessions: int = 64
    queue_limit: int = 256
    coalesce_limit: int = 32
    request_timeout: float = 30.0
    jobs: int = 1
    backend: Optional[str] = None
    kernel_cache: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ServiceError(
                f"max_sessions must be >= 1, got {self.max_sessions}"
            )
        if self.queue_limit < 1:
            raise ServiceError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.coalesce_limit < 1:
            raise ServiceError(
                f"coalesce_limit must be >= 1, got {self.coalesce_limit}"
            )
        if self.request_timeout <= 0:
            raise ServiceError(
                f"request_timeout must be > 0, got {self.request_timeout}"
            )
        if self.jobs < 1:
            raise ServiceError(f"jobs must be >= 1, got {self.jobs}")


class Session:
    """One client's live estimator plus its serving bookkeeping."""

    __slots__ = ("session_id", "name", "engine", "process", "lock",
                 "created", "estimates_served", "edits_applied", "closed")

    def __init__(
        self,
        session_id: str,
        name: str,
        engine: IncrementalEstimator,
        process: ProcessDatabase,
    ) -> None:
        self.session_id = session_id
        self.name = name
        self.engine = engine
        self.process = process
        #: Serializes edits against dispatch: the dispatcher holds this
        #: while evaluating, so an estimate never sees a half-applied
        #: edit sequence.
        self.lock = threading.Lock()
        self.created = time.time()
        self.estimates_served = 0
        self.edits_applied = 0
        self.closed = False

    def info(self) -> dict:
        """JSON-ready session descriptor (``GET /sessions/{id}``)."""
        module = self.engine.module
        return {
            "session": self.session_id,
            "name": self.name,
            "module": module.name,
            "devices": module.device_count,
            "nets": len(module.nets),
            "ports": module.port_count,
            "process": self.process.name,
            "backend": self.engine.backend,
            "version": self.engine.stats_version,
            "estimates_served": self.estimates_served,
            "edits_applied": self.edits_applied,
            "created_unix": self.created,
        }


class _Request:
    """One queued unit of dispatcher work.

    ``kind`` is ``"estimate"`` (session + rows spec, coalescible) or
    ``"job"`` (an arbitrary callable the caller needs run on the
    dispatcher thread — the sessionless batch endpoint uses this so
    *all* shared-cache work stays single-threaded).
    """

    __slots__ = ("kind", "session", "rows", "job", "event", "result",
                 "error", "version", "abandoned", "enqueued")

    def __init__(self, kind, session=None, rows=None, job=None):
        self.kind = kind
        self.session = session
        self.rows = rows
        self.job = job
        self.event = threading.Event()
        self.result = None
        self.error: Optional[BaseException] = None
        self.version: Optional[int] = None
        self.abandoned = False
        self.enqueued = time.perf_counter()


class EstimationEngine:
    """The multi-tenant facade.  See the module docstring for the
    concurrency model; see :class:`ServiceConfig` for the knobs."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self._sessions: Dict[str, Session] = {}
        self._ids = itertools.count(1)
        self._queue: deque = deque()
        self._cv = threading.Condition()
        self._closed = False
        self._counts: Dict[str, int] = {}
        self._dispatch_latency = LatencyTracker()
        #: Test/ops hook: clearing this parks the dispatcher *before*
        #: each drain, letting callers deterministically fill the queue
        #: (backpressure and timeout tests rely on it).
        self._dispatch_gate = threading.Event()
        self._dispatch_gate.set()
        self._lifecycle = contextlib.ExitStack()
        if self.config.kernel_cache is not None:
            from repro.perf.diskcache import persistent_kernel_caches

            self._lifecycle.enter_context(
                persistent_kernel_caches(self.config.kernel_cache)
            )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="mae-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------
    # session lifecycle
    # ------------------------------------------------------------------
    def create_session(
        self,
        module: Module,
        process: ProcessDatabase,
        config: Optional[EstimatorConfig] = None,
        name: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> Session:
        """Open a session around a parsed module.

        Scans the module once (on the calling thread — scanning touches
        no shared cache) into a live ``IncrementalEstimator``.  The
        module is copied, so the caller's instance stays untouched.
        """
        estimator = IncrementalEstimator(
            module, process, config,
            backend=backend if backend is not None else self.config.backend,
        )
        with self._cv:
            if self._closed:
                raise ServiceClosedError("engine is shut down")
            if len(self._sessions) >= self.config.max_sessions:
                raise SessionError(
                    f"session limit reached "
                    f"({self.config.max_sessions} open sessions)"
                )
            session_id = f"s{next(self._ids):06d}"
            session = Session(
                session_id, name or module.name, estimator, process
            )
            self._sessions[session_id] = session
            self._count("sessions_created")
        return session

    def close_session(self, session_id: str) -> dict:
        """Close a session; returns its final descriptor.  Requests
        already queued for it are answered with :class:`SessionError`
        when the dispatcher reaches them."""
        with self._cv:
            session = self._sessions.pop(session_id, None)
            if session is None:
                raise SessionError(f"unknown session {session_id!r}")
            session.closed = True
            self._count("sessions_closed")
        return session.info()

    def session(self, session_id: str) -> Session:
        """Look a session up; :class:`SessionError` when unknown."""
        with self._cv:
            session = self._sessions.get(session_id)
        if session is None:
            raise SessionError(f"unknown session {session_id!r}")
        return session

    def list_sessions(self) -> List[dict]:
        """Descriptors of every open session, oldest first."""
        with self._cv:
            sessions = sorted(
                self._sessions.values(), key=lambda s: s.session_id
            )
        return [session.info() for session in sessions]

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def estimate(
        self,
        session_id: str,
        rows: RowsSpec = None,
        timeout: Optional[float] = None,
    ):
        """Estimate a session's module as it stands now.

        ``rows=None`` follows the session config's row policy; an int
        returns one estimate; a sequence returns a tuple of estimates
        in the same order.  Blocks until the dispatcher serves the
        (possibly coalesced) request; returns ``(version, result)``
        where ``version`` is the statistics revision served.
        """
        session = self.session(session_id)
        rows_key: RowsSpec = rows
        if rows_key is not None and not isinstance(rows_key, int):
            rows_key = tuple(int(r) for r in rows_key)
        request = _Request("estimate", session=session, rows=rows_key)
        self._submit(request)
        self._wait(request, timeout)
        return request.version, request.result

    def submit_job(self, job, timeout: Optional[float] = None):
        """Run an arbitrary callable on the dispatcher thread.

        The escape hatch for work that must respect the shared-cache
        single-thread invariant but is not a session estimate — the
        server's sessionless ``POST /estimate`` routes its
        ``estimate_batch`` call through here."""
        request = _Request("job", job=job)
        self._submit(request)
        self._wait(request, timeout)
        return request.result

    def apply_edits(
        self,
        session_id: str,
        mutations: Sequence[Mutation],
        rows: RowsSpec = None,
        estimate: bool = True,
        timeout: Optional[float] = None,
    ):
        """Apply an ECO edit sequence, optionally re-estimating.

        The edits go straight into the session's delta engine under the
        session lock (O(affected nets), no queue round-trip); the
        re-estimate then rides the normal coalescing path.  Returns
        ``(version, result)`` — ``result`` is ``None`` when
        ``estimate=False``.
        """
        session = self.session(session_id)
        edits = tuple(mutations)
        with session.lock:
            if session.closed:
                raise SessionError(f"session {session_id!r} is closed")
            version = session.engine.apply(edits)
            session.edits_applied += len(edits)
        self._count("edits_applied", len(edits))
        if not estimate:
            return version, None
        return self.estimate(session_id, rows, timeout)

    # ------------------------------------------------------------------
    # metrics and shutdown
    # ------------------------------------------------------------------
    def service_stats(self) -> dict:
        """The ``service`` section of ``/metrics``: sessions, queue
        depth, request counters, and dispatch-latency quantiles."""
        with self._cv:
            counts = dict(sorted(self._counts.items()))
            open_sessions = len(self._sessions)
            depth = len(self._queue)
            closed = self._closed
        return {
            "sessions": {
                "open": open_sessions,
                "limit": self.config.max_sessions,
            },
            "queue": {
                "depth": depth,
                "limit": self.config.queue_limit,
                "coalesce_limit": self.config.coalesce_limit,
            },
            "requests": counts,
            "latency": {"dispatch": self._dispatch_latency.summary()},
            "jobs": self.config.jobs,
            "accepting": not closed,
        }

    def metrics(self) -> dict:
        """The full ``/metrics`` payload: the :mod:`repro.obs` registry
        snapshot (counters, kernel caches, plans, triangle, backend)
        plus the ``service`` section."""
        snapshot = get_registry().snapshot()
        snapshot["service"] = self.service_stats()
        return snapshot

    def shutdown(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop accepting work and bring the dispatcher down.

        ``drain=True`` (the default) serves every already-queued
        request first; ``drain=False`` fails them with
        :class:`ServiceClosedError`.  Idempotent.  Persists the kernel
        caches when ``kernel_cache`` was configured.
        """
        with self._cv:
            already = self._closed
            self._closed = True
            if not drain:
                while self._queue:
                    request = self._queue.popleft()
                    request.error = ServiceClosedError(
                        "engine shut down before serving this request"
                    )
                    request.event.set()
            self._cv.notify_all()
        self._dispatch_gate.set()
        self._dispatcher.join(timeout)
        if not already:
            self._count("shutdowns")
            self._lifecycle.close()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _count(self, name: str, value: int = 1) -> None:
        with self._cv:
            self._counts[name] = self._counts.get(name, 0) + value

    def _submit(self, request: _Request) -> None:
        with self._cv:
            if self._closed:
                raise ServiceClosedError("engine is shutting down")
            if len(self._queue) >= self.config.queue_limit:
                self._counts["rejected"] = self._counts.get(
                    "rejected", 0
                ) + 1
                raise QueueFullError(
                    f"request queue is full "
                    f"({self.config.queue_limit} pending requests)"
                )
            self._queue.append(request)
            self._counts["submitted"] = self._counts.get("submitted", 0) + 1
            self._cv.notify()

    def _wait(self, request: _Request, timeout: Optional[float]) -> None:
        deadline = timeout if timeout is not None else (
            self.config.request_timeout
        )
        if not request.event.wait(deadline):
            request.abandoned = True
            self._count("timeouts")
            raise RequestTimeoutError(
                f"request not served within {deadline:g}s "
                "(abandoned; the queue is saturated or a dispatch "
                "is long-running)"
            )
        if request.error is not None:
            raise request.error

    def _dispatch_loop(self) -> None:
        while True:
            self._dispatch_gate.wait()
            with self._cv:
                while not self._queue and not self._closed:
                    self._cv.wait()
                if not self._queue and self._closed:
                    return
                if not self._dispatch_gate.is_set() and not self._closed:
                    # The gate was cleared while we were parked in
                    # cv.wait(); re-park on the gate without draining so
                    # clearing it is a deterministic pause.
                    continue
                batch: List[_Request] = []
                while self._queue and len(batch) < self.config.coalesce_limit:
                    batch.append(self._queue.popleft())
            start = time.perf_counter()
            try:
                self._serve_batch(batch)
            except BaseException as exc:  # keep the dispatcher alive
                for request in batch:
                    if not request.event.is_set():
                        request.error = ServiceError(
                            f"dispatch failed: {exc}"
                        )
                        request.event.set()
            seconds = time.perf_counter() - start
            self._dispatch_latency.observe(seconds)
            self._count("dispatch_batches")

    def _serve_batch(self, batch: List[_Request]) -> None:
        """Serve one drained batch: jobs serially, estimates grouped
        by session (and, when configured, fanned out as one
        ``estimate_batch`` call)."""
        estimates: List[_Request] = []
        for request in batch:
            if request.kind == "job":
                try:
                    request.result = request.job()
                except BaseException as exc:
                    request.error = exc
                request.event.set()
                self._count("jobs_served")
            else:
                estimates.append(request)
        if not estimates:
            return
        groups: Dict[str, Tuple[Session, List[_Request]]] = {}
        for request in estimates:
            session = request.session
            if session.closed:
                request.error = SessionError(
                    f"session {session.session_id!r} was closed before "
                    "this request was served"
                )
                request.event.set()
                continue
            groups.setdefault(
                session.session_id, (session, [])
            )[1].append(request)
        group_list = [groups[key] for key in sorted(groups)]
        if len(group_list) > 1:
            self._count("coalesced_dispatches")
            self._count(
                "coalesced_requests",
                sum(len(requests) for _, requests in group_list),
            )
        if self.config.jobs > 1 and len(group_list) > 1:
            group_list = self._serve_via_batch(group_list)
        for session, requests in group_list:
            try:
                self._serve_group(session, requests)
            except BaseException as exc:
                for request in requests:
                    if not request.event.is_set():
                        request.error = exc
                        request.event.set()

    @staticmethod
    def _row_keys(requests: List[_Request]) -> List[Union[None, int]]:
        """Ordered unique single-row keys a request group needs."""
        keys: List[Union[None, int]] = []
        seen = set()
        for request in requests:
            spec = request.rows
            parts = spec if isinstance(spec, tuple) else (spec,)
            for key in parts:
                if key not in seen:
                    seen.add(key)
                    keys.append(key)
        return keys

    @staticmethod
    def _finish(
        requests: List[_Request],
        served: Dict[Union[None, int], StandardCellEstimate],
        version: int,
    ) -> int:
        """Assign each request its result(s) from the served map."""
        count = 0
        for request in requests:
            if isinstance(request.rows, tuple):
                request.result = tuple(
                    served[key] for key in request.rows
                )
                count += len(request.rows)
            else:
                request.result = served[request.rows]
                count += 1
            request.version = version
            request.event.set()
        return count

    def _serve_group(self, session: Session, requests: List[_Request]) -> None:
        """One session's coalesced requests: a single planning call."""
        with session.lock:
            version = session.engine.stats_version
            keys = self._row_keys(requests)
            int_keys = [key for key in keys if key is not None]
            served: Dict[Union[None, int], StandardCellEstimate] = {}
            if int_keys:
                for key, estimate in zip(
                    int_keys, session.engine.estimate_rows(int_keys)
                ):
                    served[key] = estimate
            if None in keys:
                served[None] = session.engine.estimate()
            count = self._finish(requests, served, version)
            session.estimates_served += count
        self._count("estimates_served", count)

    def _serve_via_batch(self, group_list):
        """Fan a multi-session drain out as one ``estimate_batch`` job.

        Only groups sharing one process database and backend batch
        together (``estimate_batch`` takes a single process); the rest
        are returned for the per-session path.  Bit-identity holds
        because the incremental engines' maintained statistics equal a
        rescan by construction and every batch path is bit-identical to
        the direct estimator.
        """
        from repro.perf.batch import estimate_batch

        by_context: Dict[tuple, list] = {}
        for session, requests in group_list:
            key = (id(session.process), session.engine.backend)
            by_context.setdefault(key, []).append((session, requests))
        remaining = []
        for context_groups in by_context.values():
            if len(context_groups) < 2:
                remaining.extend(context_groups)
                continue
            process = context_groups[0][0].process
            backend = context_groups[0][0].engine.backend
            with contextlib.ExitStack() as stack:
                for session, _ in context_groups:
                    stack.enter_context(session.lock)
                modules = []
                configs = []
                keys_per_group = []
                for session, requests in context_groups:
                    keys = self._row_keys(requests)
                    keys_per_group.append(keys)
                    modules.append(session.engine.module)
                    base = session.engine.config
                    configs.append([
                        base if key is None else base.with_rows(key)
                        for key in keys
                    ])
                results = estimate_batch(
                    modules, process, configs,
                    methodologies=("standard-cell",),
                    jobs=self.config.jobs, backend=backend,
                )
                cursor = 0
                count = 0
                for (session, requests), keys in zip(
                    context_groups, keys_per_group
                ):
                    served = {
                        key: results[cursor + offset].estimate
                        for offset, key in enumerate(keys)
                    }
                    cursor += len(keys)
                    group_count = self._finish(
                        requests, served, session.engine.stats_version
                    )
                    session.estimates_served += group_count
                    count += group_count
            self._count("estimates_served", count)
            self._count("batch_dispatches")
        return remaining
