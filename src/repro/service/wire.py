"""JSON wire format for served estimates and ECO edits.

The service's bit-identity guarantee rests on two properties of
Python's ``json`` module: floats round-trip exactly (encoding is
``repr``-based, decoding returns the nearest double — the same double),
and integers are arbitrary precision.  So an estimate serialized here,
shipped over HTTP, and decoded with :func:`estimate_from_jsonable` is
*the same object* field for field — ``dataclasses.astuple`` equality
holds — which is what the ``serve_equivalence`` verify gate asserts.

Tuples flatten to JSON lists; the decoders restore them recursively so
decoded results compare equal (``tracks_by_net_size``, ``net_areas``).
ECO edits reuse the versioned mutation codec of
:mod:`repro.incremental.mutations` unchanged — the HTTP body of
``POST /sessions/{id}/edits`` *is* a ``mae eco`` edits file.
"""

from __future__ import annotations

from typing import Union

from repro.core.results import FullCustomEstimate, StandardCellEstimate
from repro.errors import ServiceError

Estimate = Union[StandardCellEstimate, FullCustomEstimate]


def estimate_to_jsonable(estimate: Estimate) -> dict:
    """One estimate as a JSON-ready dict, tagged with its methodology.

    Derived properties (``aspect_ratio``) are included for human
    readers but ignored on decode — only stored fields round-trip.
    """
    if isinstance(estimate, StandardCellEstimate):
        return {
            "methodology": "standard-cell",
            "module_name": estimate.module_name,
            "rows": estimate.rows,
            "cell_width_per_row": estimate.cell_width_per_row,
            "feedthroughs": estimate.feedthroughs,
            "feedthrough_width": estimate.feedthrough_width,
            "tracks": estimate.tracks,
            "tracks_by_net_size": [
                [size, tracks] for size, tracks in estimate.tracks_by_net_size
            ],
            "width": estimate.width,
            "height": estimate.height,
            "cell_area": estimate.cell_area,
            "wiring_area": estimate.wiring_area,
            "area": estimate.area,
            "aspect_ratio": estimate.aspect_ratio,
        }
    if isinstance(estimate, FullCustomEstimate):
        return {
            "methodology": "full-custom",
            "module_name": estimate.module_name,
            "device_area_mode": estimate.device_area_mode,
            "device_area": estimate.device_area,
            "wire_area": estimate.wire_area,
            "area": estimate.area,
            "width": estimate.width,
            "height": estimate.height,
            "net_areas": [
                [name, area] for name, area in estimate.net_areas
            ],
            "aspect_ratio": estimate.aspect_ratio,
        }
    raise ServiceError(
        f"cannot serialize estimate of type {type(estimate).__name__}"
    )


def estimate_from_jsonable(payload: object) -> Estimate:
    """Decode :func:`estimate_to_jsonable` output back into the result
    dataclass, restoring tuple fields so ``dataclasses.astuple``
    equality against a direct estimate is meaningful."""
    if not isinstance(payload, dict):
        raise ServiceError("estimate payload must be a JSON object")
    methodology = payload.get("methodology")
    try:
        if methodology == "standard-cell":
            return StandardCellEstimate(
                module_name=payload["module_name"],
                rows=payload["rows"],
                cell_width_per_row=payload["cell_width_per_row"],
                feedthroughs=payload["feedthroughs"],
                feedthrough_width=payload["feedthrough_width"],
                tracks=payload["tracks"],
                tracks_by_net_size=tuple(
                    (size, tracks)
                    for size, tracks in payload["tracks_by_net_size"]
                ),
                width=payload["width"],
                height=payload["height"],
                cell_area=payload["cell_area"],
                wiring_area=payload["wiring_area"],
                area=payload["area"],
            )
        if methodology == "full-custom":
            return FullCustomEstimate(
                module_name=payload["module_name"],
                device_area_mode=payload["device_area_mode"],
                device_area=payload["device_area"],
                wire_area=payload["wire_area"],
                area=payload["area"],
                width=payload["width"],
                height=payload["height"],
                net_areas=tuple(
                    (name, area) for name, area in payload["net_areas"]
                ),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"malformed estimate payload: {exc}") from exc
    raise ServiceError(
        f"unknown estimate methodology {methodology!r}"
    )
