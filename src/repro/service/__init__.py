"""Estimation-as-a-service: engine facade and ``mae serve`` HTTP layer.

This package turns the estimator into a long-lived multi-tenant
service.  :class:`~repro.service.engine.EstimationEngine` is the
transport-agnostic facade — sessions wrap live
:class:`~repro.incremental.IncrementalEstimator` instances, a bounded
request queue coalesces concurrent estimates into batched dispatches,
and one shared plan-cache / Stirling-triangle / disk-cache lifecycle
spans all sessions.  :class:`~repro.service.server.MAEServer` exposes
the facade over stdlib HTTP+JSON (``mae serve``);
:mod:`~repro.service.wire` defines the bit-exact estimate codec; and
:mod:`~repro.service.loadtest` drives a live server with verify-corpus
traffic for CI smoke and the bench serve phase.

See ``docs/SERVICE.md`` for the operator's guide and
``docs/ARCHITECTURE.md`` for the cache-sharing invariants the engine
enforces.
"""

from repro.service.engine import EstimationEngine, ServiceConfig, Session
from repro.service.server import MAEServer, ROUTES, start_server
from repro.service.wire import estimate_from_jsonable, estimate_to_jsonable

__all__ = [
    "EstimationEngine",
    "MAEServer",
    "ROUTES",
    "ServiceConfig",
    "Session",
    "estimate_from_jsonable",
    "estimate_to_jsonable",
    "start_server",
]
