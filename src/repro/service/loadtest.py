"""Synthetic multi-session load against a live ``mae serve``.

The load generator drives the server the way the motivating use case
does — many concurrent floorplan iterations, each owning one session,
streaming ECO edits and re-estimating — using the **verify corpus
generators** (:mod:`repro.verify.corpus`) as the module population, so
the traffic covers the same design families the differential harness
fuzzes.

Each worker thread owns one session *and a client-side mirror* of its
module.  Edits are generated against the mirror, shipped over HTTP,
and applied to the mirror only after the server confirms — so at every
sample point the mirror equals the server's live module, and the
response can be checked **bit-identical** against a direct
:func:`~repro.core.standard_cell.estimate_standard_cell_from_stats`
call on the mirror's scan.  Those checks are deferred until the load
finishes: during the run only the engine's dispatcher thread touches
the shared kernel caches (the concurrency invariant of
``docs/ARCHITECTURE.md``), so the verifier must not race it.

``python -m repro.service.loadtest`` is the CI smoke entry point: it
starts an in-process server, runs the load, asserts p99/throughput
bounds and a clean drain-on-shutdown, and exits non-zero on any
violation.  The bench serve phase (:mod:`repro.perf.bench` schema v5)
reuses :func:`run_load` for the committed p50/p99 numbers.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import random
import sys
import threading
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Tuple

from repro.core.config import EstimatorConfig
from repro.core.standard_cell import estimate_standard_cell_from_stats
from repro.errors import ServiceError
from repro.incremental.editgen import random_mutation
from repro.incremental.mutations import mutations_to_jsonable
from repro.netlist.model import Module
from repro.netlist.stats import scan_module
from repro.netlist.writers import write_verilog
from repro.obs.metrics import latency_percentiles
from repro.service.engine import EstimationEngine, ServiceConfig
from repro.service.server import MAEServer, start_server
from repro.service.wire import estimate_from_jsonable
from repro.technology.libraries import builtin_processes
from repro.verify.corpus import draw_corpus

#: Row lists the multi-row requests cycle through.
ROW_MENU: Tuple[Tuple[int, ...], ...] = ((2, 3, 4), (3, 5), (4, 6, 8))

#: Per-worker cap on deferred bit-identity samples, bounding the
#: post-run verification cost at large session counts.
MAX_SAMPLES_PER_WORKER = 25


def corpus_modules(count: int, base_seed: int = 0) -> List[Module]:
    """``count`` standard-cell modules drawn from the verify corpus."""
    specs = [
        spec for spec in draw_corpus(2 * count + 8, base_seed)
        if spec.methodology == "standard-cell"
    ]
    if len(specs) < count:
        raise ServiceError(
            f"corpus draw produced only {len(specs)} standard-cell "
            f"specs for {count} sessions"
        )
    return [spec.build() for spec in specs[:count]]


def _request(
    base_url: str, method: str, path: str,
    payload: Optional[dict] = None, timeout: float = 30.0,
) -> Tuple[int, dict]:
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(
        base_url + path, data=data, headers=headers, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        try:
            body = json.loads(exc.read())
        except Exception:
            body = {"error": exc.reason}
        return exc.code, body


class _Worker:
    """One session: mixed estimate/edit traffic plus deferred samples."""

    def __init__(self, index: int, base_url: str, module: Module,
                 tech: str, seed: int, deadline: float,
                 verify_every: int):
        self.index = index
        self.base_url = base_url
        self.module = module
        self.tech = tech
        self.rng = random.Random(seed * 7919 + index)
        self.deadline = deadline
        self.verify_every = verify_every
        self.config = EstimatorConfig()
        self.latencies: List[float] = []
        self.estimates = 0
        self.edits = 0
        self.requests = 0
        self.rejected = 0
        self.errors: List[str] = []
        #: Deferred bit-identity samples: (stats, rows key or None,
        #: estimate payload dict).
        self.samples: List[tuple] = []
        self.session_id: Optional[str] = None

    def run(self) -> None:
        try:
            self._run()
        except Exception as exc:  # surface, don't kill the thread pool
            self.errors.append(f"worker {self.index}: {exc}")

    def _run(self) -> None:
        mirror = self.module.copy()
        status, body = self._timed(
            "POST", "/sessions",
            {"source": write_verilog(self.module), "format": "verilog",
             "tech": self.tech, "name": f"load-{self.index}"},
        )
        if status != 201:
            self.errors.append(
                f"worker {self.index}: session create -> {status} "
                f"{body.get('error')}"
            )
            return
        self.session_id = body["session"]
        turn = 0
        while time.perf_counter() < self.deadline:
            turn += 1
            draw = self.rng.random()
            if draw < 0.5:
                self._estimate(mirror, rows=None, sample=turn)
            elif draw < 0.75:
                rows = ROW_MENU[turn % len(ROW_MENU)]
                self._estimate(mirror, rows=list(rows), sample=turn)
            else:
                self._edit(mirror)
        self._timed("DELETE", f"/sessions/{self.session_id}", None)

    def _estimate(self, mirror: Module, rows, sample: int) -> None:
        status, body = self._timed(
            "POST", f"/sessions/{self.session_id}/estimate",
            {"rows": rows} if rows is not None else {},
        )
        if status == 429:
            self.rejected += 1
            time.sleep(0.002)
            return
        if status != 200:
            self.errors.append(
                f"worker {self.index}: estimate -> {status} "
                f"{body.get('error')}"
            )
            return
        served = body.get("estimates", None)
        if served is None:
            served = [body["estimate"]]
            keys = [None]
        else:
            keys = list(rows)
        self.estimates += len(served)
        if (sample % self.verify_every == 0
                and len(self.samples) < MAX_SAMPLES_PER_WORKER):
            stats = self._scan(mirror)
            for key, payload in zip(keys, served):
                self.samples.append((stats, key, payload))

    def _edit(self, mirror: Module) -> None:
        mutation = random_mutation(
            mirror, self.rng, self.config.power_nets
        )
        status, body = self._timed(
            "POST", f"/sessions/{self.session_id}/edits",
            {"edits": mutations_to_jsonable([mutation])},
        )
        if status == 429:
            self.rejected += 1
            time.sleep(0.002)
            return
        if status != 200:
            self.errors.append(
                f"worker {self.index}: edit -> {status} "
                f"{body.get('error')}"
            )
            return
        # Confirmed applied: keep the mirror in lockstep.
        mutation.apply(mirror)
        self.edits += 1
        self.estimates += 1
        if len(self.samples) < MAX_SAMPLES_PER_WORKER:
            self.samples.append(
                (self._scan(mirror), None, body["estimate"])
            )

    def _scan(self, mirror: Module):
        process = _PROCESSES[self.tech]
        return scan_module(
            mirror,
            device_width=process.device_width,
            device_height=process.device_height,
            port_width=(self.config.port_pitch_override
                        or process.port_pitch),
            power_nets=self.config.power_nets,
        )

    def _timed(self, method: str, path: str, payload) -> Tuple[int, dict]:
        start = time.perf_counter()
        try:
            status, body = _request(self.base_url, method, path, payload)
        except Exception as exc:
            self.errors.append(f"worker {self.index}: {method} {path}: {exc}")
            return 0, {}
        self.latencies.append(time.perf_counter() - start)
        self.requests += 1
        return status, body


#: Shared per-tech process databases for client-side verification
#: (constants equal the server's instances by construction).
_PROCESSES = {
    name: factory() for name, factory in builtin_processes().items()
}


def run_load(
    base_url: str,
    sessions: int = 10,
    duration: float = 2.0,
    seed: int = 0,
    tech: str = "nmos",
    verify_every: int = 5,
) -> dict:
    """Drive ``sessions`` concurrent workers for ``duration`` seconds.

    Returns the load report: request/estimate totals, latency
    percentiles over every HTTP call, sustained estimates/sec, and the
    deferred bit-identity verification tally (``mismatches`` must be 0;
    the CLI and the bench serve phase both fail otherwise).
    """
    if sessions < 1:
        raise ServiceError(f"sessions must be >= 1, got {sessions}")
    if duration <= 0:
        raise ServiceError(f"duration must be > 0, got {duration}")
    modules = corpus_modules(sessions, base_seed=seed)
    start = time.perf_counter()
    deadline = start + duration
    workers = [
        _Worker(index, base_url, module, tech, seed, deadline,
                verify_every)
        for index, module in enumerate(modules)
    ]
    threads = [
        threading.Thread(target=worker.run, name=f"load-{worker.index}")
        for worker in workers
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start

    # Deferred bit-identity verification: the load is over, so direct
    # kernel evaluation no longer races the dispatcher thread.
    process = _PROCESSES[tech]
    config = EstimatorConfig()
    verified = 0
    mismatches: List[str] = []
    for worker in workers:
        for stats, rows_key, payload in worker.samples:
            case_config = (
                config if rows_key is None else config.with_rows(rows_key)
            )
            direct = estimate_standard_cell_from_stats(
                stats, process, case_config
            )
            served = estimate_from_jsonable(payload)
            if dataclasses.astuple(direct) != dataclasses.astuple(served):
                mismatches.append(
                    f"worker {worker.index} rows={rows_key}: served "
                    f"estimate diverges from the direct call"
                )
            verified += 1

    latencies = [
        value for worker in workers for value in worker.latencies
    ]
    quantiles = latency_percentiles(latencies, (0.50, 0.99))
    estimates = sum(worker.estimates for worker in workers)
    return {
        "sessions": sessions,
        "duration_s": duration,
        "elapsed_s": round(elapsed, 3),
        "requests": sum(worker.requests for worker in workers),
        "estimates": estimates,
        "edits": sum(worker.edits for worker in workers),
        "rejected": sum(worker.rejected for worker in workers),
        "errors": [
            error for worker in workers for error in worker.errors
        ],
        "verified": verified,
        "mismatches": mismatches,
        "latency": {
            "count": len(latencies),
            "p50_ms": quantiles["p50_ms"],
            "p99_ms": quantiles["p99_ms"],
            "max_ms": round(
                1000.0 * max(latencies), 3
            ) if latencies else 0.0,
        },
        "estimates_per_sec": round(estimates / elapsed, 1) if elapsed else 0.0,
    }


def format_report(report: dict) -> str:
    """Human-readable one-screen summary of a load report."""
    latency = report["latency"]
    lines = [
        f"serve load: {report['sessions']} sessions, "
        f"{report['elapsed_s']:.2f}s",
        f"  requests {report['requests']}  estimates "
        f"{report['estimates']}  edits {report['edits']}  "
        f"rejected(429) {report['rejected']}",
        f"  latency p50 {latency['p50_ms']:.2f}ms  p99 "
        f"{latency['p99_ms']:.2f}ms  max {latency['max_ms']:.2f}ms",
        f"  throughput {report['estimates_per_sec']:.1f} estimates/sec",
        f"  bit-identity: {report['verified']} samples verified, "
        f"{len(report['mismatches'])} mismatches",
    ]
    if report["errors"]:
        lines.append(f"  errors ({len(report['errors'])}):")
        lines.extend(f"    {error}" for error in report["errors"][:10])
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CI smoke entry point: in-process server + load + assertions."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.loadtest",
        description="Run a synthetic multi-session load against an "
                    "in-process mae serve and assert latency, "
                    "throughput, bit-identity, and clean shutdown.",
    )
    parser.add_argument("--sessions", type=int, default=10, metavar="N",
                        help="concurrent sessions/worker threads "
                             "(default: 10)")
    parser.add_argument("--duration", type=float, default=2.0, metavar="S",
                        help="seconds of sustained load (default: 2)")
    parser.add_argument("--seed", type=int, default=0,
                        help="corpus/traffic seed (default: 0)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="engine estimate_batch fan-out for "
                             "multi-session drains (default: 1)")
    parser.add_argument("--tech", choices=sorted(_PROCESSES),
                        default="nmos",
                        help="process database for every session "
                             "(default: nmos)")
    parser.add_argument("--assert-p99-ms", type=float, default=None,
                        metavar="MS",
                        help="fail when p99 request latency exceeds MS")
    parser.add_argument("--assert-throughput", type=float, default=None,
                        metavar="EPS",
                        help="fail when sustained estimates/sec falls "
                             "below EPS")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="also write the load report to FILE")
    args = parser.parse_args(argv)

    engine = EstimationEngine(ServiceConfig(
        max_sessions=max(args.sessions + 8, 64),
        jobs=args.jobs,
    ))
    server = start_server(engine)
    failures: List[str] = []
    try:
        report = run_load(
            server.base_url, sessions=args.sessions,
            duration=args.duration, seed=args.seed, tech=args.tech,
        )
    finally:
        # Exercise the documented drain path, then confirm it worked.
        status, _ = _request(server.base_url, "POST", "/shutdown", {})
        deadline = time.perf_counter() + 15.0
        while not server.stopped and time.perf_counter() < deadline:
            time.sleep(0.05)
    clean = status == 202 and server.stopped
    report["clean_shutdown"] = clean
    print(format_report(report))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"load report written to {args.json}")

    if report["errors"]:
        failures.append(f"{len(report['errors'])} request errors")
    if report["mismatches"]:
        failures.append(
            f"{len(report['mismatches'])} bit-identity mismatches"
        )
    if not report["verified"]:
        failures.append("no bit-identity samples were verified")
    if not clean:
        failures.append("shutdown did not drain cleanly")
    if args.assert_p99_ms is not None and (
        report["latency"]["p99_ms"] > args.assert_p99_ms
    ):
        failures.append(
            f"p99 {report['latency']['p99_ms']:.2f}ms exceeds the "
            f"bound {args.assert_p99_ms:.2f}ms"
        )
    if args.assert_throughput is not None and (
        report["estimates_per_sec"] < args.assert_throughput
    ):
        failures.append(
            f"throughput {report['estimates_per_sec']:.1f}/s is below "
            f"the bound {args.assert_throughput:.1f}/s"
        )
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
