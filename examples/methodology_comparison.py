#!/usr/bin/env python3
"""Methodology trade-off study: Standard-Cell vs Full-Custom per module.

"Accurate module area estimators and floor planners allow the
generation of trial floor plans for comparing the various different
layout methodologies or mixtures of them.  The designer can then
intelligently choose the most appropriate methodology."

This example sweeps a family of datapath modules, estimates each under
both methodologies (full-custom estimation works on the transistor-
level expansion of the same logic), and prints the crossover: small
modules favour full-custom, larger ones favour standard cells as
design effort dominates — but the *area* story is what the estimator
quantifies.

Run:  python examples/methodology_comparison.py
"""

from repro import EstimatorConfig, nmos_process
from repro.core.full_custom import estimate_full_custom
from repro.core.gate_array import estimate_gate_array
from repro.core.standard_cell import estimate_standard_cell
from repro.reporting import render_table
from repro.workloads.generators import (
    decoder_module,
    expand_to_transistors,
)


def main() -> None:
    process = nmos_process()
    config = EstimatorConfig()

    rows = []
    for bits in (1, 2, 3, 4):
        gate_level = decoder_module(f"decoder{bits}", address_bits=bits)
        transistor_level = expand_to_transistors(gate_level)

        sc = estimate_standard_cell(gate_level, process, config)
        fc = estimate_full_custom(transistor_level, process, config)
        ga = estimate_gate_array(gate_level, process, config=config)
        areas = {"standard-cell": sc.area, "full-custom": fc.area,
                 "gate-array": ga.area}
        winner = min(areas, key=areas.get)
        rows.append(
            (
                gate_level.name,
                gate_level.device_count,
                transistor_level.device_count,
                round(sc.area),
                round(fc.area),
                round(ga.area),
                f"{ga.utilization:.0%}",
                winner,
            )
        )

    print(render_table(
        ("Module", "Gates", "Transistors", "SC area", "FC area",
         "GA area", "GA util", "Smallest"),
        rows,
        title="Decoder family: the three methodologies of Section 1 "
              "(areas in lambda^2)",
    ))
    print(
        "\nFull-custom wins on area (no routing channels, abutting\n"
        "transistors); the gate array pays for its prediffused sites\n"
        "and fixed channels -- the paper's motivation for estimating\n"
        "before committing: area vs design effort is now a number,\n"
        "not a guess."
    )


if __name__ == "__main__":
    main()
