#!/usr/bin/env python3
"""Full-custom estimation from a SPICE deck, checked against a layout.

The full-custom estimator works at the transistor level (Section 4.2:
"individual transistor layouts are used as Standard-Cells").  This
example feeds the estimator a SPICE subcircuit, prints the per-net
minimum-interconnection areas of Eq. 13, and then runs the package's
layout simulator on the same module to show how close the pre-layout
estimate lands — the Table 1 experiment in miniature.

Run:  python examples/spice_full_custom.py
"""

from repro import ModuleAreaEstimator, nmos_process, parse_spice
from repro.layout import layout_full_custom
from repro.units import format_area

DECK = """nMOS 2-input NAND followed by an inverter (Mead-Conway style)
.SUBCKT nand_inv a b y
* NAND2: series pull-down stack + depletion load
M1 w a  m   gnd nmos_enh W=7 L=2
M2 m b  gnd gnd nmos_enh W=7 L=2
M3 vdd w  w   vdd nmos_dep W=10 L=2
* output inverter
M4 y w  gnd gnd nmos_enh W=7 L=2
M5 vdd y  y   vdd nmos_dep W=10 L=2
.ENDS
.END
"""


def main() -> None:
    process = nmos_process()
    module = parse_spice(DECK)
    print(f"parsed {module!r} from the SPICE deck")

    estimator = ModuleAreaEstimator(process)
    record = estimator.estimate(module, ("full-custom",))
    fc = record.full_custom

    print("\nper-net minimum interconnection areas (Eq. 13):")
    if fc.net_areas:
        for name, area in fc.net_areas:
            print(f"  {name:8s} {area:8.1f} lambda^2")
    else:
        print("  (all nets are 1- or 2-component: zero wire area,")
        print("   the starred case of the paper's Table 1)")

    print(f"\nestimated: device {format_area(fc.device_area)}, "
          f"wire {format_area(fc.wire_area)}, "
          f"total {format_area(fc.area, process.lambda_um)}")

    layout = layout_full_custom(module, process, seed=1)
    error = fc.area / layout.area - 1.0
    print(f"layout simulator ('manual layout'): "
          f"{format_area(layout.area, process.lambda_um)} "
          f"(packing efficiency {layout.packing_efficiency:.0%})")
    print(f"estimation error: {error:+.1%} "
          f"(paper's Table 1 band: -17% .. +26%)")


if __name__ == "__main__":
    main()
