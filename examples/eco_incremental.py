#!/usr/bin/env python3
"""ECO flow: re-estimate a module incrementally as edits arrive.

Late netlist changes (engineering change orders) arrive as small edits
to an otherwise-finished module.  Rescanning and re-estimating from
scratch after every edit repeats work that the edit did not touch; the
incremental engine keeps the scan statistics live and re-estimates in
O(affected nets) — with results bit-identical to a full rescan.

This example:

1. builds a module and an `IncrementalEstimator` for it,
2. applies a hand-written ECO (swap a gate, reroute a net),
3. replays a random 20-edit sequence, printing the area trajectory,
4. verifies the final state against a from-scratch rescan,
5. saves the edit sequence as a JSON file `mae eco` can replay.

Run:  python examples/eco_incremental.py
"""

import dataclasses
import os
import tempfile

from repro import cmos_process
from repro.core.standard_cell import estimate_standard_cell_from_stats
from repro.incremental import (
    AddDevice,
    ConnectTerminal,
    DisconnectTerminal,
    IncrementalEstimator,
    RemoveDevice,
    generate_edit_sequence,
    load_mutations,
    save_mutations,
)
from repro.workloads.generators import random_gate_module


def main() -> None:
    process = cmos_process()
    module = random_gate_module(
        "eco_demo", gates=120, inputs=12, outputs=8, seed=5, locality=0.5
    )
    engine = IncrementalEstimator(module, process)

    before = engine.estimate()
    print(f"before ECO: {before.rows} rows, {before.tracks} tracks, "
          f"area {before.area:,.0f} lambda^2")

    # --- 2. a hand-written ECO: replace g10 with a 3-input NAND -------
    victim = engine.module.device("g10")
    pins = dict(victim.pins)
    eco = [
        RemoveDevice("g10"),
        AddDevice.make("g10_fix", "NAND3", pins),
        # and reroute one sink of its output net onto a fresh net
        DisconnectTerminal("g11", next(iter(engine.module.device("g11").pins))),
    ]
    after_fix = engine.estimate_after(eco)
    print(f"after 3-edit fix (revision {engine.stats_version}): "
          f"area {after_fix.area:,.0f} lambda^2 "
          f"({(after_fix.area / before.area - 1):+.1%})")

    # --- 3. a random 20-edit sequence, estimated per edit -------------
    edits = generate_edit_sequence(engine.module, 20, seed=42)
    for index, edit in enumerate(edits):
        estimate = engine.estimate_after(edit)
        if index % 5 == 4:
            print(f"  edit {index + 1:2d} ({edit.kind:13s}): "
                  f"area {estimate.area:,.0f} lambda^2")

    # --- 4. the equivalence guarantee, checked explicitly -------------
    fresh = engine.rescan()
    rebuilt = estimate_standard_cell_from_stats(fresh, process)
    assert engine.statistics() == fresh
    assert dataclasses.astuple(engine.estimate()) == dataclasses.astuple(rebuilt)
    print(f"verified at revision {engine.stats_version}: incremental "
          "statistics and estimate are bit-identical to a full rescan")

    # --- 5. persist the sequence for `mae eco` replay ------------------
    path = os.path.join(tempfile.gettempdir(), "eco_demo_edits.json")
    save_mutations(path, edits)
    assert load_mutations(path) == edits
    print(f"edit sequence saved to {path} "
          f"(replay: mae eco <schematic> --edits {path})")


if __name__ == "__main__":
    main()
