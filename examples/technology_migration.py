#!/usr/bin/env python3
"""Technology retargeting: one netlist, several fabrication processes.

"The estimator deals with different chip fabrication technologies
(e.g., CMOS and nMOS) and can easily be adjusted to cope with new chip
fabrication processes."  A process is just a database (Fig. 1), so
retargeting an estimate is a matter of swapping the database — this
example estimates the same counter under nMOS, CMOS, and a custom
process built on the fly, then saves/reloads the custom process as
JSON to show the multi-database store.

Run:  python examples/technology_migration.py
"""

import tempfile
from pathlib import Path

from repro import EstimatorConfig, cmos_process, nmos_process
from repro.core.standard_cell import estimate_standard_cell
from repro.reporting import render_table
from repro.technology.loader import load_process_file, save_process_file
from repro.technology.process import DeviceKind, DeviceType, ProcessDatabase
from repro.units import area_lambda2_to_um2
from repro.workloads.generators import counter_module


def build_custom_process() -> ProcessDatabase:
    """A hypothetical scaled CMOS process (lambda = 0.6 um)."""
    base = cmos_process()
    process = ProcessDatabase(
        name="cmos-1.2um-shrink",
        lambda_um=0.6,
        row_height=base.row_height,
        feedthrough_width=base.feedthrough_width,
        track_pitch=base.track_pitch,
        port_pitch=base.port_pitch,
        description="optical shrink of the 2um CMOS library",
    )
    for device_type in base.device_types:
        process.register(
            DeviceType(device_type.name, device_type.width,
                       device_type.height, device_type.kind,
                       device_type.pin_count, device_type.description)
        )
    return process.validate()


def main() -> None:
    module = counter_module("counter12", bits=12)
    config = EstimatorConfig()

    custom = build_custom_process()
    # The multi-database store: processes live as JSON files.
    with tempfile.TemporaryDirectory() as tmp:
        path = save_process_file(custom, Path(tmp) / "shrink.json")
        custom = load_process_file(path)
        print(f"custom process round-tripped through {path.name}")

    rows = []
    for process in (nmos_process(), cmos_process(), custom):
        estimate = estimate_standard_cell(module, process, config)
        um2 = area_lambda2_to_um2(estimate.area, process.lambda_um)
        rows.append(
            (
                process.name,
                process.lambda_um,
                estimate.rows,
                estimate.tracks,
                round(estimate.area),
                round(um2),
                f"{estimate.aspect_ratio:.2f}",
            )
        )

    print(render_table(
        ("Process", "lambda (um)", "Rows", "Tracks", "Area (lambda^2)",
         "Area (um^2)", "Aspect"),
        rows,
        title=f"{module.name}: the same netlist under three processes",
    ))
    print(
        "\nlambda^2 areas track the library geometry; physical um^2\n"
        "areas shrink quadratically with lambda -- exactly the\n"
        "scalable-rules behaviour the estimator's process database\n"
        "abstraction is built around."
    )


if __name__ == "__main__":
    main()
