#!/usr/bin/env python3
"""Hierarchical design entry: flatten, then estimate per module.

Real schematics arrive as a library of modules instantiating one
another; the paper's flow estimates each *leaf partition* of the chip
and floor-plans from the estimates.  This example:

1. parses a three-level hierarchical Verilog library,
2. flattens the top for a whole-chip estimate,
3. estimates each first-level partition separately (the paper's
   per-module flow) and floor-plans the partitions,
4. shows the consistency between the two views.

Run:  python examples/hierarchical_design.py
"""

from repro import ModuleAreaEstimator, nmos_process
from repro.core.candidates import candidate_shapes
from repro.floorplan.floorplanner import FloorplanModule, floorplan
from repro.floorplan.shapes import ShapeList
from repro.netlist.hierarchy import build_library, flatten
from repro.netlist.verilog import parse_verilog_library
from repro.units import format_area

SOURCE = """
// A tiny hierarchical chip: datapath + control + an I/O ring of
// buffers, each built from shared leaf modules.
module bitslice (a, b, ci, s, co);
  input a, b, ci;
  output s, co;
  FADD fa (.a(a), .b(b), .ci(ci), .y(s), .co(co));
endmodule

module datapath (a0, a1, a2, a3, b0, b1, b2, b3, cin, s0, s1, s2, s3, cout);
  input a0, a1, a2, a3, b0, b1, b2, b3, cin;
  output s0, s1, s2, s3, cout;
  bitslice u0 (.a(a0), .b(b0), .ci(cin), .s(s0), .co(c0));
  bitslice u1 (.a(a1), .b(b1), .ci(c0), .s(s1), .co(c1));
  bitslice u2 (.a(a2), .b(b2), .ci(c1), .s(s2), .co(c2));
  bitslice u3 (.a(a3), .b(b3), .ci(c2), .s(s3), .co(cout));
endmodule

module control (ck, en, q0, q1, q2);
  input ck, en;
  output q0, q1, q2;
  XOR2 x0 (.a(q0), .b(en), .y(t0));
  DFF  f0 (.d(t0), .ck(ck), .q(q0));
  AND2 a0 (.a(en), .b(q0), .y(e1));
  XOR2 x1 (.a(q1), .b(e1), .y(t1));
  DFF  f1 (.d(t1), .ck(ck), .q(q1));
  AND2 a1 (.a(e1), .b(q1), .y(e2));
  XOR2 x2 (.a(q2), .b(e2), .y(t2));
  DFF  f2 (.d(t2), .ck(ck), .q(q2));
endmodule

module chip (ck, en, a0, a1, a2, a3, b0, b1, b2, b3, s0, s1, s2, s3, cout, q0, q1, q2);
  input ck, en, a0, a1, a2, a3, b0, b1, b2, b3;
  output s0, s1, s2, s3, cout, q0, q1, q2;
  control  ctl (.ck(ck), .en(en), .q0(q0), .q1(q1), .q2(q2));
  datapath dp  (.a0(a0), .a1(a1), .a2(a2), .a3(a3),
                .b0(b0), .b1(b1), .b2(b2), .b3(b3), .cin(q0),
                .s0(s0), .s1(s1), .s2(s2), .s3(s3), .cout(cout));
endmodule
"""


def main() -> None:
    process = nmos_process()
    estimator = ModuleAreaEstimator(process)
    library = build_library(parse_verilog_library(SOURCE))

    # Whole-chip view: flatten and estimate as one module.
    flat_chip = flatten(library, "chip")
    chip_record = estimator.estimate(flat_chip)
    print(f"flattened chip: {flat_chip.device_count} devices, "
          f"{flat_chip.net_count} nets")
    print(f"  one-module standard-cell estimate: "
          f"{format_area(chip_record.standard_cell.area, process.lambda_um)}")

    # Partitioned view: the paper's flow — estimate each partition,
    # then floor-plan.  Each partition offers five aspect candidates
    # (the Section 7 extension) to the floorplanner.
    partitions = ["control", "datapath"]
    fp_modules = []
    total = 0.0
    print("\nper-partition estimates:")
    for name in partitions:
        flat = flatten(library, name)
        record = estimator.estimate(flat)
        area = record.standard_cell.area
        total += area
        shapes = candidate_shapes(flat, process, count=5)
        fp_modules.append(
            FloorplanModule(
                name,
                ShapeList.from_dimensions([(w, h) for _, w, h in shapes]),
            )
        )
        print(f"  {name:9s} {flat.device_count:3d} devices  "
              f"SC {format_area(area, process.lambda_um)}  "
              f"{len(shapes)} candidate shapes")

    plan = floorplan(fp_modules, seed=3)
    print(f"\nfloorplan of the partitions: "
          f"{plan.chip.width:.0f} x {plan.chip.height:.0f} lambda, "
          f"area {format_area(plan.area, process.lambda_um)}, "
          f"dead space {plan.dead_space_fraction:.1%}")
    print("(the floorplanner picked the smallest candidate per module --"
          " here the full-custom shapes, demonstrating the methodology-"
          "mixing use case)")
    print(f"sum of partition SC estimates: {format_area(total)}")
    print(f"single-module estimate    : "
          f"{format_area(chip_record.standard_cell.area)}")
    print("\n(The single-module estimate differs from the partitioned "
          "sum because\nrouting grows with module size -- the reason "
          "the paper estimates modules,\nnot whole chips: 'the "
          "estimator ... is not intended for area estimation of "
          "entire chips'.)")


if __name__ == "__main__":
    main()
