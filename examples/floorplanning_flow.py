#!/usr/bin/env python3
"""Chip floor-planning flow: estimates drive the floor planner.

Figure 1's full data path, and the paper's second contribution: a chip
is partitioned into modules, each module is *estimated* (not laid
out!), the estimates go into a database, and a slicing floorplanner
arranges the chip from the database.  Afterwards the modules are
actually laid out and we count how many floor-planning iterations the
estimates saved compared to a naive designer rule of thumb.

Run:  python examples/floorplanning_flow.py    (takes ~a minute)
"""

from repro import ModuleAreaEstimator, nmos_process
from repro.experiments.iterations import (
    format_iterations,
    run_iteration_experiment,
)
from repro.floorplan.floorplanner import FloorplanModule, floorplan
from repro.iodb.database import EstimateDatabase
from repro.units import format_area
from repro.workloads.generators import (
    counter_module,
    decoder_module,
    mux_tree_module,
    random_gate_module,
    register_file_module,
)


def main() -> None:
    process = nmos_process()

    # The chip: five heterogeneous modules.
    modules = [
        counter_module("counter8", bits=8),
        decoder_module("decoder3", address_bits=3),
        mux_tree_module("mux8", select_bits=3),
        register_file_module("regfile", words=4, bits=4),
        random_gate_module("control", gates=40, inputs=8, outputs=6,
                           seed=77, locality=0.5),
    ]

    # Estimate every module and store the results (Fig. 1 output).
    estimator = ModuleAreaEstimator(process)
    database = EstimateDatabase(process.name)
    print("module estimates:")
    for record in estimator.estimate_all(modules):
        database.add(record)
        sc = record.standard_cell
        fc = record.full_custom
        print(f"  {record.module_name:10s} SC {sc.area:10,.0f}  "
              f"FC {fc.area:10,.0f}  -> {record.best_methodology()}")

    # Floorplan the chip from the estimates.  Each module offers both
    # methodology shapes (and rotations), so the planner effectively
    # chooses the methodology mix -- the paper's "trial floor plans for
    # comparing the various different layout methodologies".
    plan = floorplan([FloorplanModule.from_estimate(r) for r in database],
                     seed=7)
    print(f"\nfloorplan: chip = {plan.chip.width:.0f} x "
          f"{plan.chip.height:.0f} lambda, "
          f"area {format_area(plan.area, process.lambda_um)}, "
          f"dead space {plan.dead_space_fraction:.1%}")
    for name, rect in sorted(plan.placements.items()):
        print(f"  {name:10s} at ({rect.x:7.0f}, {rect.y:7.0f}) "
              f"size {rect.width:.0f} x {rect.height:.0f}")

    from repro.viz import floorplan_to_text

    print()
    print(floorplan_to_text(plan))

    # Contribution 2: how many estimate->plan->layout->replan cycles
    # does the estimator save over a naive rule of thumb?
    print("\nrunning the iteration-count comparison "
          "(lays out every module; takes a moment)...")
    comparison = run_iteration_experiment(modules, process)
    print(format_iterations(comparison))


if __name__ == "__main__":
    main()
