#!/usr/bin/env python3
"""Quickstart: estimate a module's layout area before laying it out.

This is the paper's core use case.  A designer has a schematic (here, a
structural Verilog netlist) and wants to know — *before* spending days
on layout — how big the module will be under the Standard-Cell and
Full-Custom methodologies, and what aspect ratio to tell the chip floor
planner.

Run:  python examples/quickstart.py
"""

from repro import (
    EstimatorConfig,
    ModuleAreaEstimator,
    nmos_process,
    parse_verilog,
)
from repro.units import format_area

SCHEMATIC = """
// 2-bit ripple-carry adder built from half/full adder macro cells
module adder2 (a0, a1, b0, b1, cin, s0, s1, cout);
  input a0, a1, b0, b1, cin;
  output s0, s1, cout;
  FADD fa0 (.a(a0), .b(b0), .ci(cin), .y(s0), .co(c0));
  FADD fa1 (.a(a1), .b(b1), .ci(c0), .y(s1), .co(cout));
endmodule
"""


def main() -> None:
    # 1. Parse the schematic (the estimator also reads SPICE decks for
    #    transistor-level modules).
    module = parse_verilog(SCHEMATIC)
    print(f"parsed {module!r}")

    # 2. Pick a fabrication process database.  The nMOS Mead-Conway
    #    process (lambda = 2.5 um) matches the paper's experiments;
    #    swap in cmos_process() to retarget the same netlist.
    process = nmos_process()

    # 3. Estimate.  The default config reproduces the paper's published
    #    behaviour; see EstimatorConfig for every knob.
    estimator = ModuleAreaEstimator(process, EstimatorConfig())
    record = estimator.estimate(module)

    stats = record.statistics
    print(f"\nschematic scan: N={stats.device_count} devices, "
          f"H={stats.net_count} nets, W_avg={stats.average_width:.1f} lambda")

    sc = record.standard_cell
    print("\nStandard-Cell estimate (Eq. 12):")
    print(f"  rows            : {sc.rows}")
    print(f"  routing tracks  : {sc.tracks} (upper bound, one net/track)")
    print(f"  feed-throughs   : {sc.feedthroughs}")
    print(f"  dimensions      : {sc.width:.0f} x {sc.height:.0f} lambda")
    print(f"  area            : {format_area(sc.area, process.lambda_um)}")
    print(f"  aspect ratio    : {sc.aspect_ratio:.2f}")

    fc = record.full_custom
    print("\nFull-Custom estimate (Eq. 13, exact device areas):")
    print(f"  device area     : {format_area(fc.device_area, process.lambda_um)}")
    print(f"  wire area       : {format_area(fc.wire_area, process.lambda_um)}")
    print(f"  dimensions      : {fc.width:.0f} x {fc.height:.0f} lambda")
    print(f"  area            : {format_area(fc.area, process.lambda_um)}")

    fca = record.full_custom_average
    print(f"\nFull-Custom with average device areas: "
          f"{format_area(fca.area, process.lambda_um)}")

    print(f"\nrecommended methodology: {record.best_methodology()}")
    print(f"estimator CPU time: {record.cpu_seconds * 1000:.2f} ms "
          f"(paper budget: 1.5-3 s on a Sun 3/50)")


if __name__ == "__main__":
    main()
